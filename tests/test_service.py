"""Service semantics: store durability, cache hits, batched execution.

Pins the acceptance properties of the serving layer: a burst of N
compatible jobs takes fewer than N engine launches, every job's result
is bit-identical to a solo ``run_simulation`` of the same config
(serially *and* on a multi-worker pool), a duplicate submission is
answered from the content-addressed cache without re-execution (bounded
by the LRU budgets), and a killed-and-restarted server resumes its
queue from the JSONL store.
"""

import json
import os
import signal

import pytest

from repro import SimulationConfig, run_simulation
from repro.errors import ServiceError
from repro.exec import execute_launch
from repro.io import config_digest, run_result_from_dict, run_result_to_dict
from repro.service import (
    Job,
    JobState,
    JobStore,
    ResultCache,
    SimulationService,
)


def _cfg(seed=0, n_per_side=16, steps=40, **kw):
    kw.setdefault("height", 24)
    kw.setdefault("width", 24)
    return SimulationConfig(n_per_side=n_per_side, steps=steps, seed=seed, **kw)


def _solo(cfg, engine="vectorized"):
    return run_simulation(cfg, engine=engine, record_timeline=False)


#: Step marker that makes `_crashing_execute_launch` SIGKILL its worker.
_CRASH_STEPS = 13


def _crashing_execute_launch(work):
    """Launch executor that dies mid-launch for marked configs.

    Module-level so pool workers can import it by reference; every
    non-marked launch delegates to the real implementation.
    """
    if any(c.steps == _CRASH_STEPS for c in work.configs):
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_launch(work)


class TestJobStore:
    def test_submit_reload_roundtrip(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        job = Job.create(store.next_job_id(), _cfg(), "vectorized")
        store.submit(job)
        reloaded = JobStore(path)
        assert len(reloaded) == 1
        back = reloaded.get(job.job_id)
        assert back.config == job.config
        assert back.digest == job.digest
        assert back.state is JobState.QUEUED

    def test_state_events_replay_to_latest(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        job = Job.create(store.next_job_id(), _cfg(), "vectorized")
        store.submit(job)
        job.state = JobState.DONE
        job.result = {"throughput_total": 7}
        store.update(job)
        back = JobStore(path).get(job.job_id)
        assert back.state is JobState.DONE
        assert back.result == {"throughput_total": 7}

    def test_running_jobs_requeue_on_reload(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        job = Job.create(store.next_job_id(), _cfg(), "vectorized")
        store.submit(job)
        job.state = JobState.RUNNING
        store.update(job)
        reloaded = JobStore(path)
        assert reloaded.get(job.job_id).state is JobState.QUEUED
        assert reloaded.resumed_jobs == 1

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        store.submit(Job.create(store.next_job_id(), _cfg(), "vectorized"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "submit", "job": {"job_id": "jo')  # torn
        reloaded = JobStore(path)
        assert len(reloaded) == 1

    def test_job_ids_monotonic_across_restarts(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        first = store.next_job_id()
        store.submit(Job.create(first, _cfg(), "vectorized"))
        assert JobStore(path).next_job_id() != first


class TestResultCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"result": {"throughput_total": 3}})
        assert cache.get("deadbeef")["result"]["throughput_total"] == 3
        assert "deadbeef" in cache and len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put("aaaa", {"x": 1})
        with open(os.path.join(cache.root, "aaaa.json"), "w") as fh:
            fh.write("{not json")
        assert cache.get("aaaa") is None


class TestResultWireFormat:
    def test_roundtrip_without_timeline(self):
        result = _solo(_cfg()).result
        back = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert back.throughput_total == result.throughput_total
        assert back.moved_per_step is None

    def test_roundtrip_with_timeline(self):
        result = run_simulation(_cfg(steps=10), record_timeline=True).result
        back = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert back.moved_per_step.tolist() == result.moved_per_step.tolist()
        assert (
            back.crossings_per_step.tolist()
            == result.crossings_per_step.tolist()
        )


class TestConfigDigest:
    def test_digest_is_field_order_independent(self):
        cfg = _cfg()
        shuffled = dict(reversed(list(cfg.to_dict().items())))
        assert config_digest(cfg) == config_digest(
            SimulationConfig.from_dict(shuffled)
        )

    def test_digest_distinguishes_seed_and_population(self):
        digests = {
            config_digest(_cfg(seed=0)),
            config_digest(_cfg(seed=1)),
            config_digest(_cfg(n_per_side=8)),
        }
        assert len(digests) == 3

    def test_digest_ignores_the_backend_field(self):
        # The backend selects an executor, not a simulation; trajectories
        # are bit-identical across backends, so the cache key must let a
        # cupy request reuse a numpy result.
        cfg = _cfg()
        assert config_digest(cfg) == config_digest(cfg.replace(backend="cupy"))


class TestBatchedServing:
    def test_burst_takes_fewer_launches_than_jobs(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        jobs = [svc.submit(_cfg(seed=s)) for s in range(6)]
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["engine_launches"] < len(jobs)
        assert stats["multi_lane_batches"] >= 1
        assert stats["completed"] == len(jobs)

    def test_service_results_bit_identical_to_solo_runs(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        configs = [_cfg(seed=s) for s in range(4)]
        configs += [_cfg(seed=0, n_per_side=8), _cfg(seed=1, n_per_side=24)]
        jobs = [svc.submit(c) for c in configs]
        svc.run_until_idle()
        for cfg, job in zip(configs, jobs):
            got = svc.job(job.job_id)
            assert got.state is JobState.DONE
            expected = run_result_to_dict(_solo(cfg).result)
            # "platform" records who executed (batched vs solo engine);
            # every simulation field must match bit for bit.
            expected.pop("platform")
            served = dict(got.result)
            assert served.pop("platform") in ("batched", "vectorized")
            assert served == expected

    def test_mixed_populations_pad_into_one_launch(self, tmp_path):
        svc = SimulationService(str(tmp_path), max_pad_waste=0.5)
        for n in (8, 12, 16):
            svc.submit(_cfg(seed=0, n_per_side=n))
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["engine_launches"] == 1
        assert stats["padded_batches"] == 1

    def test_pad_lanes_off_only_fuses_same_shape(self, tmp_path):
        svc = SimulationService(str(tmp_path), pad_lanes=False)
        for n in (8, 16):
            for s in (0, 1):
                svc.submit(_cfg(seed=s, n_per_side=n))
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["engine_launches"] == 2
        assert stats["padded_batches"] == 0

    def test_sequential_engine_jobs_run_solo(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        for s in (0, 1):
            svc.submit(_cfg(seed=s), engine="sequential")
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["solo_runs"] == 2
        assert stats["multi_lane_batches"] == 0


class TestCacheSemantics:
    def test_duplicate_submission_hits_cache_without_rerun(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        cfg = _cfg(seed=3)
        first = svc.submit(cfg)
        svc.run_until_idle()
        launches = svc.stats_dict()["engine_launches"]
        second = svc.submit(cfg)
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["engine_launches"] == launches  # no re-execution
        assert stats["cache_hits"] == 1
        job = svc.job(second.job_id)
        assert job.cache_hit and job.state is JobState.DONE
        assert job.result == svc.job(first.job_id).result

    def test_coalescing_is_engine_aware_for_failures(self, tmp_path):
        # Same config digest, different engines, one tick: the tiled
        # job's engine-specific failure (grid not a multiple of 16) must
        # not leak onto the vectorized job, which runs fine.
        svc = SimulationService(str(tmp_path))
        cfg = _cfg(seed=13)
        bad = svc.submit(cfg, engine="tiled")
        good = svc.submit(cfg, engine="vectorized")
        svc.run_until_idle()
        assert svc.job(bad.job_id).state is JobState.FAILED
        assert svc.job(good.job_id).state is JobState.DONE
        assert svc.job(good.job_id).result is not None

    def test_identical_jobs_in_one_tick_coalesce(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        cfg = _cfg(seed=5)
        a = svc.submit(cfg)
        b = svc.submit(cfg)
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["engine_launches"] == 1
        assert stats["coalesced"] == 1
        assert svc.job(a.job_id).result == svc.job(b.job_id).result

    def test_cache_serves_across_restarts(self, tmp_path):
        state = str(tmp_path)
        svc = SimulationService(state)
        cfg = _cfg(seed=7)
        svc.submit(cfg)
        svc.run_until_idle()
        again = SimulationService(state)
        job = again.submit(cfg)
        again.run_until_idle()
        stats = again.stats_dict()
        assert stats["cache_hits"] == 1 and stats["engine_launches"] == 0
        assert again.job(job.job_id).result == run_result_to_dict(
            _solo(cfg).result
        )


class TestRestartResume:
    def test_queued_jobs_survive_a_restart(self, tmp_path):
        state = str(tmp_path)
        svc = SimulationService(state)
        queued = [svc.submit(_cfg(seed=s)) for s in range(3)]
        del svc  # "kill" the server without ever ticking
        resumed = SimulationService(state)
        assert [j.job_id for j in resumed.store.queued()] == [
            j.job_id for j in queued
        ]
        resumed.run_until_idle()
        for job in queued:
            back = resumed.job(job.job_id)
            assert back.state is JobState.DONE
            assert back.result is not None

    def test_running_jobs_requeue_and_complete(self, tmp_path):
        state = str(tmp_path)
        svc = SimulationService(state)
        job = svc.submit(_cfg(seed=11))
        # Simulate dying mid-batch: the store recorded "running" but no
        # terminal state ever followed.
        job.state = JobState.RUNNING
        svc.store.update(job)
        resumed = SimulationService(state)
        assert resumed.stats.resumed == 1
        resumed.run_until_idle()
        assert resumed.job(job.job_id).state is JobState.DONE


class TestFailurePaths:
    def test_engine_failure_marks_job_failed(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        # The tiled engine requires multiple-of-16 grid edges; 24x24 is a
        # clean per-job failure, not a service crash.
        bad = svc.submit(_cfg(), engine="tiled")
        good = svc.submit(_cfg(seed=1))
        svc.run_until_idle()
        assert svc.job(bad.job_id).state is JobState.FAILED
        assert svc.job(bad.job_id).error
        assert svc.job(good.job_id).state is JobState.DONE
        assert svc.stats_dict()["failed"] == 1

    def test_unknown_job_id_raises(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        with pytest.raises(ServiceError):
            svc.job("job-999999")

    def test_non_repro_exception_fails_the_job_not_the_service(
        self, tmp_path, monkeypatch
    ):
        # A launch raising something outside the ReproError hierarchy
        # (library error, bug) must fail its own jobs, not strand them
        # RUNNING forever while the tick loop keeps spinning. The solo
        # engine entry point now lives in the shared execution layer.
        import repro.exec.work as exec_work

        def boom(*args, **kwargs):
            raise ValueError("engine exploded mid-launch")

        monkeypatch.setattr(exec_work, "run_simulation", boom)
        svc = SimulationService(str(tmp_path))
        job = svc.submit(_cfg(), engine="sequential")
        svc.run_until_idle()
        back = svc.job(job.job_id)
        assert back.state is JobState.FAILED
        assert "exploded" in back.error
        assert svc.stats_dict()["queued"] == 0


class TestBurstSubmission:
    def test_submit_many_is_one_durable_append(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        jobs = svc.submit_many([(_cfg(seed=s), "vectorized") for s in range(4)])
        assert [j.state for j in jobs] == [JobState.QUEUED] * 4
        # Every job of the burst survives a restart.
        resumed = SimulationService(str(tmp_path))
        assert [j.job_id for j in resumed.store.queued()] == [
            j.job_id for j in jobs
        ]

    def test_submit_many_accepts_priority_and_deadline(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        jobs = svc.submit_many(
            [
                (_cfg(seed=0), "vectorized"),
                (_cfg(seed=1), "vectorized", 3),
                (_cfg(seed=2), "vectorized", 7, 1.5),
            ]
        )
        assert [j.priority for j in jobs] == [0, 3, 7]
        assert [j.deadline_s for j in jobs] == [None, None, 1.5]


class TestMultiWorkerService:
    """`workers=N`: concurrent launches, same answers, isolated crashes."""

    def _mixed_configs(self):
        # A burst the planner cannot fuse into one launch: two models
        # plus one off-step-budget config => >= 3 separate launches.
        return (
            [_cfg(seed=s) for s in range(2)]
            + [_cfg(seed=s).with_model("aco") for s in range(2)]
            + [_cfg(seed=0, steps=60)]
        )

    def test_results_bit_identical_to_serial_path(self, tmp_path):
        configs = self._mixed_configs()
        serial = SimulationService(str(tmp_path / "serial"))
        serial_jobs = [serial.submit(c) for c in configs]
        serial.run_until_idle()

        multi = SimulationService(str(tmp_path / "multi"), workers=2)
        try:
            multi_jobs = [multi.submit(c) for c in configs]
            multi.run_until_idle()
            for cfg, s_job, m_job in zip(configs, serial_jobs, multi_jobs):
                served = dict(multi.job(m_job.job_id).result)
                expected = dict(serial.job(s_job.job_id).result)
                served.pop("platform")
                expected.pop("platform")
                assert served == expected
                assert (
                    served["throughput_total"]
                    == _solo(cfg).result.throughput_total
                )
        finally:
            multi.close()

    def test_launches_overlap_on_two_workers(self, tmp_path):
        svc = SimulationService(str(tmp_path), workers=2)
        try:
            for c in self._mixed_configs():
                svc.submit(c)
            svc.run_until_idle()
            stats = svc.stats_dict()
            assert stats["workers"] == 2
            assert stats["peak_concurrent_launches"] >= 2
            assert stats["failed"] == 0
            assert stats["engine_launches"] >= 3
        finally:
            svc.close()

    def test_worker_crash_fails_only_its_job(self, tmp_path, monkeypatch):
        import repro.service.scheduler as scheduler_mod

        monkeypatch.setattr(
            scheduler_mod, "execute_launch", _crashing_execute_launch
        )
        svc = SimulationService(str(tmp_path), workers=2)
        try:
            doomed = svc.submit(_cfg(seed=0, steps=_CRASH_STEPS))
            siblings = [
                svc.submit(_cfg(seed=s).with_model("aco")) for s in range(2)
            ]
            svc.run_until_idle()
            assert svc.job(doomed.job_id).state is JobState.FAILED
            assert "died mid-launch" in svc.job(doomed.job_id).error
            for job in siblings:
                assert svc.job(job.job_id).state is JobState.DONE
            # The respawned worker serves subsequent ticks normally.
            after = svc.submit(_cfg(seed=5))
            later = svc.submit(_cfg(seed=6, steps=60))
            svc.run_until_idle()
            assert svc.job(after.job_id).state is JobState.DONE
            assert svc.job(later.job_id).state is JobState.DONE
            assert svc.stats_dict()["failed"] == 1
        finally:
            svc.close()

    def test_close_is_idempotent_and_keeps_queue_durable(self, tmp_path):
        svc = SimulationService(str(tmp_path), workers=2)
        queued = svc.submit(_cfg(seed=4))
        svc.close()
        svc.close()
        resumed = SimulationService(str(tmp_path))
        assert [j.job_id for j in resumed.store.queued()] == [queued.job_id]
        resumed.run_until_idle()
        assert resumed.job(queued.job_id).state is JobState.DONE

    def test_invalid_worker_count(self, tmp_path):
        with pytest.raises(ServiceError):
            SimulationService(str(tmp_path), workers=0)


class TestPriorityScheduling:
    def test_drain_order_priority_then_deadline_then_fifo(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        fifo_a = svc.submit(_cfg(seed=0))
        late = svc.submit(_cfg(seed=1), priority=1, deadline_s=9.0)
        soon = svc.submit(_cfg(seed=2), priority=1, deadline_s=2.0)
        fifo_b = svc.submit(_cfg(seed=3))
        urgent = svc.submit(_cfg(seed=4), priority=5)
        order = svc._drain_order(svc.store.queued())
        assert [j.job_id for j in order] == [
            urgent.job_id,
            soon.job_id,
            late.job_id,
            fifo_a.job_id,
            fifo_b.job_id,
        ]

    def test_priority_jobs_complete_with_correct_results(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        cfg = _cfg(seed=8)
        job = svc.submit(cfg, priority=9, deadline_s=0.5)
        svc.run_until_idle()
        got = svc.job(job.job_id)
        assert got.state is JobState.DONE
        assert (
            got.result["throughput_total"]
            == _solo(cfg).result.throughput_total
        )

    def test_priority_survives_the_jsonl_store(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        job = svc.submit(_cfg(seed=3), priority=4, deadline_s=7.0)
        resumed = SimulationService(str(tmp_path))
        back = resumed.store.get(job.job_id)
        assert back.priority == 4
        assert back.deadline_s == 7.0


class TestCacheEviction:
    def _payload(self, k, pad=0):
        return {"result": {"throughput_total": k}, "pad": "x" * pad}

    def test_entry_budget_evicts_least_recently_used(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), max_entries=2)
        cache.put("aa", self._payload(1))
        cache.put("bb", self._payload(2))
        assert cache.get("aa") is not None  # refresh: bb becomes LRU
        cache.put("cc", self._payload(3))
        assert cache.get("bb") is None
        assert cache.get("aa") is not None and cache.get("cc") is not None
        assert len(cache) == 2 and cache.evictions == 1

    def test_byte_budget_evicts_but_keeps_newest(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), max_bytes=300)
        cache.put("aa", self._payload(1, pad=200))
        cache.put("bb", self._payload(2, pad=200))
        # Budget fits one padded entry: the older one must be gone.
        assert cache.get("aa") is None
        assert cache.get("bb") is not None
        # A single entry above the budget is still retained.
        cache.put("cc", self._payload(3, pad=1000))
        assert cache.get("cc") is not None
        assert len(cache) == 1

    def test_recency_persists_across_restarts(self, tmp_path):
        root = str(tmp_path / "c")
        cache = ResultCache(root)
        cache.put("aa", self._payload(1))
        cache.put("bb", self._payload(2))
        os.utime(  # make the access gap visible to mtime ordering
            os.path.join(root, "aa.json"), (0, 0)
        )
        reopened = ResultCache(root, max_entries=1)
        assert reopened.get("aa") is None  # stale entry evicted at init
        assert reopened.get("bb") is not None
        assert reopened.evictions == 1

    def test_budgets_reported_by_service_stats(self, tmp_path):
        svc = SimulationService(str(tmp_path), cache_entries=1)
        svc.submit(_cfg(seed=0))
        svc.submit(_cfg(seed=1, n_per_side=8))
        svc.run_until_idle()
        stats = svc.stats_dict()
        assert stats["cache_entries"] == 1
        assert stats["cache_evictions"] >= 1
        assert stats["cache_bytes"] > 0

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            ResultCache(str(tmp_path / "c"), max_entries=0)
        with pytest.raises(ServiceError):
            ResultCache(str(tmp_path / "c"), max_bytes=0)
