"""Model parameter bundle tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    ACOParams,
    GreedyParams,
    LEMParams,
    MODEL_NAMES,
    RandomParams,
    params_from_name,
)


class TestLEMParams:
    def test_defaults_standard_normal(self):
        p = LEMParams()
        assert p.mu == 0.0 and p.sigma == 1.0 and p.rule == "floor"

    def test_sigma_positive(self):
        with pytest.raises(ConfigurationError):
            LEMParams(sigma=0.0).validate()

    def test_rule_checked(self):
        with pytest.raises(ConfigurationError):
            LEMParams(rule="round").validate()

    def test_replace(self):
        p = LEMParams().replace(sigma=0.3)
        assert p.sigma == 0.3

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            LEMParams().replace(sigma=-1.0)


class TestACOParams:
    def test_defaults(self):
        p = ACOParams()
        assert p.alpha == 1.0 and p.beta == 2.0
        p.validate()

    def test_rho_range(self):
        with pytest.raises(ConfigurationError):
            ACOParams(rho=0.0).validate()
        with pytest.raises(ConfigurationError):
            ACOParams(rho=1.5).validate()
        ACOParams(rho=1.0).validate()  # boundary allowed

    def test_clamp_ordering(self):
        with pytest.raises(ConfigurationError):
            ACOParams(tau_min=1.0, tau0=0.5).validate()
        with pytest.raises(ConfigurationError):
            ACOParams(tau_max=0.01).validate()

    def test_negative_exponents_rejected(self):
        with pytest.raises(ConfigurationError):
            ACOParams(alpha=-1).validate()
        with pytest.raises(ConfigurationError):
            ACOParams(beta=-1).validate()

    def test_deposit_positive(self):
        with pytest.raises(ConfigurationError):
            ACOParams(deposit_q=0.0).validate()


class TestRegistry:
    def test_all_names_resolve(self):
        for name in MODEL_NAMES:
            params = params_from_name(name)
            assert params.model_name == name

    def test_case_insensitive(self):
        assert isinstance(params_from_name("ACO"), ACOParams)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            params_from_name("boids")

    def test_baseline_params_exist(self):
        assert isinstance(params_from_name("random"), RandomParams)
        assert isinstance(params_from_name("greedy"), GreedyParams)
