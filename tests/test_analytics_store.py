"""RunStore: schema lifecycle, migrations, restart safety, queries."""

import sqlite3

import pytest

from repro.analytics import SCHEMA_VERSION, RunStore, scenario_key
from repro.config import SimulationConfig
from repro.errors import AnalyticsError, ReproError
from repro.metrics import step_metrics


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "analytics.sqlite")


@pytest.fixture()
def store(db_path):
    s = RunStore(db_path)
    yield s
    s.close()


def _records(run_id, steps, agents=40):
    crossed = 0
    out = []
    for step in range(steps):
        crossed += step % 3
        out.append(
            step_metrics(run_id, step, agents - step, step % 3, crossed, agents)
        )
    return out


class TestSchema:
    def test_fresh_store_is_at_head_version(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_wal_journaling(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_newer_schema_refused(self, db_path):
        conn = sqlite3.connect(db_path)
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(AnalyticsError, match="newer"):
            RunStore(db_path)

    def test_corrupt_file_raises_analytics_error(self, db_path):
        with open(db_path, "wb") as fh:
            fh.write(b"this is not a sqlite database, not even close\n" * 20)
        with pytest.raises(AnalyticsError):
            RunStore(db_path)

    def test_analytics_error_is_repro_error(self):
        assert issubclass(AnalyticsError, ReproError)

    def test_v1_to_v2_migration(self, db_path, tiny_config):
        # A hand-built v1 database: the runs table before the backend
        # column existed.
        conn = sqlite3.connect(db_path)
        conn.execute(
            """CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, digest TEXT NOT NULL,
                scenario TEXT NOT NULL, model TEXT NOT NULL,
                engine TEXT NOT NULL, height INTEGER NOT NULL,
                width INTEGER NOT NULL, agents INTEGER NOT NULL,
                steps INTEGER NOT NULL, seed INTEGER NOT NULL,
                status TEXT NOT NULL DEFAULT 'running',
                throughput_total INTEGER, wall_seconds REAL,
                density REAL NOT NULL, flow REAL, created_s REAL NOT NULL
            )"""
        )
        conn.execute(
            """CREATE TABLE metrics (
                run_id TEXT NOT NULL, step INTEGER NOT NULL,
                moved INTEGER NOT NULL, new_crossings INTEGER NOT NULL,
                crossed_total INTEGER NOT NULL,
                gridlock_fraction REAL NOT NULL, lane_index REAL,
                PRIMARY KEY (run_id, step)
            )"""
        )
        conn.execute(
            "INSERT INTO runs (run_id, digest, scenario, model, engine, "
            "height, width, agents, steps, seed, status, density, created_s) "
            "VALUES ('old-run', 'd', '16x16', 'lem', 'vectorized', 16, 16, "
            "24, 20, 3, 'done', 0.09, 1.0)"
        )
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()

        store = RunStore(db_path)
        try:
            assert store.schema_version == SCHEMA_VERSION
            old = store.run("old-run")
            assert old["backend"] == "numpy"  # migration default
            # And the migrated store accepts new writes with the column.
            store.begin_run("new-run", tiny_config, "vectorized", "d2")
            assert store.run("new-run")["backend"] == tiny_config.backend
        finally:
            store.close()

    def test_v2_to_v3_migration(self, db_path, tiny_config):
        # A hand-built v2 database: metrics before the dispatch_ops column.
        conn = sqlite3.connect(db_path)
        conn.execute(
            """CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, digest TEXT NOT NULL,
                scenario TEXT NOT NULL, model TEXT NOT NULL,
                engine TEXT NOT NULL, backend TEXT NOT NULL,
                height INTEGER NOT NULL, width INTEGER NOT NULL,
                agents INTEGER NOT NULL, steps INTEGER NOT NULL,
                seed INTEGER NOT NULL,
                status TEXT NOT NULL DEFAULT 'running',
                throughput_total INTEGER, wall_seconds REAL,
                density REAL NOT NULL, flow REAL, created_s REAL NOT NULL
            )"""
        )
        conn.execute(
            """CREATE TABLE metrics (
                run_id TEXT NOT NULL, step INTEGER NOT NULL,
                moved INTEGER NOT NULL, new_crossings INTEGER NOT NULL,
                crossed_total INTEGER NOT NULL,
                gridlock_fraction REAL NOT NULL, lane_index REAL,
                PRIMARY KEY (run_id, step)
            )"""
        )
        conn.execute(
            "INSERT INTO metrics (run_id, step, moved, new_crossings, "
            "crossed_total, gridlock_fraction, lane_index) "
            "VALUES ('old-run', 0, 7, 1, 1, 0.3, NULL)"
        )
        conn.execute("PRAGMA user_version=2")
        conn.commit()
        conn.close()

        store = RunStore(db_path)
        try:
            assert store.schema_version == SCHEMA_VERSION
            # Pre-migration rows read back with a NULL dispatch count.
            old = store.metrics("old-run")
            assert old[0]["moved"] == 7
            assert old[0]["dispatch_ops"] is None
            # New writes carry the column through.
            record = step_metrics(
                "old-run", 1, 6, 0, 1, 40, dispatch_ops=68
            )
            store.append_metrics([record])
            rows = store.metrics("old-run")
            assert rows[-1]["dispatch_ops"] == 68
        finally:
            store.close()


class TestLifecycle:
    def test_begin_append_finish(self, store, tiny_config):
        store.begin_run("r1", tiny_config, "vectorized", "digest-1")
        row = store.run("r1")
        assert row["status"] == "running"
        assert row["scenario"] == scenario_key(
            tiny_config.height, tiny_config.width
        )
        assert row["agents"] == tiny_config.total_agents
        assert row["flow"] is None

        assert store.append_metrics(_records("r1", 5)) == 5
        assert [m["step"] for m in store.metrics("r1")] == list(range(5))

        store.finish_run("r1", "done", throughput_total=10, wall_seconds=0.5)
        row = store.run("r1")
        assert row["status"] == "done"
        assert row["flow"] == pytest.approx(10 / tiny_config.steps)

    def test_metrics_after_step_returns_only_tail(self, store, tiny_config):
        store.begin_run("r1", tiny_config, "vectorized", "d")
        store.append_metrics(_records("r1", 8))
        tail = store.metrics("r1", after_step=5)
        assert [m["step"] for m in tail] == [6, 7]

    def test_finish_unknown_run_raises(self, store):
        with pytest.raises(AnalyticsError, match="unknown run"):
            store.finish_run("nope", "done")

    def test_failed_run_keeps_partial_metrics(self, store, tiny_config):
        store.begin_run("r1", tiny_config, "vectorized", "d")
        store.append_metrics(_records("r1", 3))
        store.finish_run("r1", "failed")
        assert store.run("r1")["status"] == "failed"
        assert len(store.metrics("r1")) == 3
        # Failed runs never contribute fundamental-diagram points.
        assert store.fundamental_diagram() == []

    def test_rebegin_clears_stale_metrics(self, store, tiny_config):
        # A requeued job re-executes under the same run id after a crash
        # mid-stream; its torn rows must not mix into the new attempt.
        store.begin_run("r1", tiny_config, "vectorized", "d")
        store.append_metrics(_records("r1", 7))
        store.begin_run("r1", tiny_config, "vectorized", "d")
        assert store.metrics("r1") == []
        assert store.run("r1")["status"] == "running"

    def test_survives_restart(self, db_path, tiny_config):
        store = RunStore(db_path)
        store.begin_run("r1", tiny_config, "vectorized", "d")
        store.append_metrics(_records("r1", 4))
        store.finish_run("r1", "done", throughput_total=6)
        store.close()

        reopened = RunStore(db_path)
        try:
            assert reopened.run("r1")["status"] == "done"
            assert len(reopened.metrics("r1")) == 4
        finally:
            reopened.close()

    def test_close_is_idempotent(self, store):
        store.close()
        store.close()


class TestQueries:
    @pytest.fixture()
    def populated(self, store, tiny_config, small_config):
        # Two scenarios (16x16 and 32x32), three finished runs plus one
        # still running and one failed.
        for i, (cfg, tp) in enumerate(
            [(tiny_config, 6), (tiny_config.replace(seed=9), 8), (small_config, 30)]
        ):
            rid = f"done-{i}"
            store.begin_run(rid, cfg, "vectorized", f"d{i}")
            store.append_metrics(_records(rid, 3, agents=cfg.total_agents))
            store.finish_run(rid, "done", throughput_total=tp, wall_seconds=0.1)
        store.begin_run("running-0", small_config.replace(seed=1), "vectorized", "dr")
        store.begin_run("failed-0", tiny_config.replace(seed=2), "vectorized", "df")
        store.finish_run("failed-0", "failed")
        return store

    def test_len_and_counts(self, populated):
        assert len(populated) == 5
        counts = populated.counts()
        assert counts["runs_done"] == 3
        assert counts["runs_running"] == 1
        assert counts["runs_failed"] == 1
        assert counts["metric_rows"] == 9

    def test_scenarios_spans_both_geometries(self, populated):
        assert populated.scenarios() == ["16x16", "32x32"]

    def test_runs_filter_by_scenario(self, populated):
        small = populated.runs(scenario="32x32")
        assert {r["run_id"] for r in small} == {"done-2", "running-0"}
        assert all(r["scenario"] == "32x32" for r in small)

    def test_runs_limit_newest_first(self, populated):
        rows = populated.runs(limit=2)
        assert len(rows) == 2
        # Newest-first: the last two begun runs come back.
        assert rows[0]["run_id"] in ("running-0", "failed-0")

    def test_fundamental_diagram_across_scenarios(self, populated):
        points = populated.fundamental_diagram()
        assert {p["run_id"] for p in points} == {"done-0", "done-1", "done-2"}
        assert {p["scenario"] for p in points} == {"16x16", "32x32"}
        densities = [p["density"] for p in points]
        assert densities == sorted(densities)
        for p in points:
            assert p["flow"] == pytest.approx(
                p["throughput_total"] / p["steps"]
            )

    def test_fundamental_diagram_scenario_filter(self, populated):
        points = populated.fundamental_diagram(scenario="16x16")
        assert {p["run_id"] for p in points} == {"done-0", "done-1"}

    def test_describe_mentions_path_and_counts(self, populated):
        text = populated.describe()
        assert populated.path in text
        assert "runs_done" in text
