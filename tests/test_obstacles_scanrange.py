"""Tests for the obstacle layouts and the extended scanning range."""

import numpy as np
import pytest

from repro import ObstacleSpec, SimulationConfig, build_engine
from repro.errors import ConfigurationError
from repro.grid import DistanceTable, bottleneck_mask, pillars_mask, rects_mask
from repro.models import ACOParams, LEMParams
from repro.types import CellState, Group


class TestObstacleMasks:
    def test_bottleneck_geometry(self):
        mask = bottleneck_mask(20, 16, gap=4)
        row = mask[10]
        assert row.sum() == 12
        assert not row[6:10].any()  # the gap is open and centred

    def test_bottleneck_thickness(self):
        mask = bottleneck_mask(20, 16, gap=4, thickness=3, wall_row=8)
        assert mask[8:11].any(axis=1).all()
        assert not mask[7].any() and not mask[11].any()

    def test_bottleneck_validation(self):
        with pytest.raises(ConfigurationError):
            bottleneck_mask(20, 16, gap=0)
        with pytest.raises(ConfigurationError):
            bottleneck_mask(20, 16, gap=4, wall_row=19, thickness=3)

    def test_pillars_stay_in_band(self):
        mask = pillars_mask(40, 40, spacing=8, size=2, band=0.5)
        rows = np.nonzero(mask.any(axis=1))[0]
        assert rows.min() >= 10 and rows.max() < 30
        assert mask.sum() > 0

    def test_rects(self):
        mask = rects_mask(10, 10, ((1, 1, 3, 4),))
        assert mask.sum() == 6
        with pytest.raises(ConfigurationError):
            rects_mask(10, 10, ((5, 5, 4, 6),))

    def test_spec_build_and_validate(self):
        spec = ObstacleSpec("bottleneck", gap=6)
        mask = spec.build(32, 32)
        assert mask.any()
        with pytest.raises(ConfigurationError):
            ObstacleSpec("moat").validate()
        with pytest.raises(ConfigurationError):
            ObstacleSpec("rects").validate()


class TestObstacleSimulation:
    def _cfg(self, **kw):
        defaults = dict(
            height=32, width=32, n_per_side=60, steps=60, seed=7,
            obstacles=ObstacleSpec("bottleneck", gap=6),
        )
        defaults.update(kw)
        return SimulationConfig(**defaults)

    def test_agents_never_enter_obstacles(self):
        eng = build_engine(self._cfg(), "vectorized")
        wall = eng.env.obstacle_mask().copy()
        for _ in range(60):
            eng.step()
            assert np.array_equal(eng.env.obstacle_mask(), wall)
            rows = eng.pop.rows[1:]
            cols = eng.pop.cols[1:]
            assert not wall[rows, cols].any()
        eng.validate_state()

    def test_equivalence_with_obstacles(self):
        cfg = self._cfg().with_model("aco")
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        til = build_engine(cfg, "tiled")
        for _ in range(40):
            rs, rv, rt = seq.step(), vec.step(), til.step()
            assert rs == rv == rt
        assert seq.state_equals(vec) and vec.state_equals(til)

    def test_bottleneck_reduces_throughput(self):
        open_cfg = self._cfg(obstacles=None)
        narrow = self._cfg(obstacles=ObstacleSpec("bottleneck", gap=2))
        t_open = build_engine(open_cfg, "vectorized")
        t_narrow = build_engine(narrow, "vectorized")
        t_open.run(record_timeline=False)
        t_narrow.run(record_timeline=False)
        assert t_narrow.throughput() < t_open.throughput()

    def test_placement_avoids_obstacles_in_band(self):
        cfg = self._cfg(
            obstacles=ObstacleSpec("rects", rects=((0, 0, 2, 16),)),
            n_per_side=30,
        )
        eng = build_engine(cfg, "vectorized")
        assert (eng.env.mat[:2, :16] == CellState.OBSTACLE).all()
        eng.validate_state()

    def test_overlapping_obstacles_rejected(self):
        env_cfg = self._cfg(n_per_side=200, obstacles=None, fill_fraction=1.0)
        eng = build_engine(env_cfg, "vectorized")
        with pytest.raises(ValueError, match="overlaps"):
            eng.env.add_obstacles(np.ones((32, 32), dtype=bool))

    def test_config_type_checked(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(obstacles="wall")


class TestScanRange:
    def test_default_matches_paper_table(self):
        base = DistanceTable(50, Group.TOP)
        extended = DistanceTable(50, Group.TOP, scan_range=1)
        assert np.array_equal(base.table, extended.table)

    def test_lookahead_row_distance(self):
        table = DistanceTable(50, Group.TOP, scan_range=3)
        # Forward slot looks 3 rows ahead: distance shrinks by 3.
        assert table.distance(20, 1) == pytest.approx(49 - 23)

    def test_ordering_preserved(self):
        for r in (1, 2, 4):
            table = DistanceTable(60, Group.BOTTOM, scan_range=r).table
            mid = table[30]
            assert mid[0] < mid[1] == mid[2] < mid[3] == mid[4] < mid[5]

    def test_clamped_at_edges(self):
        table = DistanceTable(20, Group.TOP, scan_range=10)
        # Near the target the look-ahead clamps to the end row.
        assert np.isfinite(table.distance(17, 1))

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            LEMParams(scan_range=0).validate()
        with pytest.raises(ConfigurationError):
            ACOParams(scan_range=40).validate()

    def test_engine_uses_scan_range(self):
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=40, steps=5, seed=1,
            params=ACOParams(scan_range=4),
        )
        eng = build_engine(cfg, "vectorized")
        assert eng.dist[Group.TOP].scan_range == 4

    def test_scan_range_changes_behaviour(self):
        base = SimulationConfig(height=32, width=32, n_per_side=120, steps=50, seed=3)
        near = build_engine(base.replace(params=ACOParams(scan_range=1)), "vectorized")
        far = build_engine(base.replace(params=ACOParams(scan_range=6)), "vectorized")
        near.run(record_timeline=False)
        far.run(record_timeline=False)
        assert not near.env.equals(far.env)

    def test_equivalence_with_scan_range(self):
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=60, steps=30, seed=9,
            params=ACOParams(scan_range=3),
        )
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        for _ in range(30):
            assert seq.step() == vec.step()
        assert seq.state_equals(vec)

    def test_swap_model_rebuilds_tables(self):
        cfg = SimulationConfig(height=32, width=32, n_per_side=40, steps=5, seed=1)
        eng = build_engine(cfg, "sequential")
        assert eng.dist[Group.TOP].scan_range == 1
        eng.swap_model(LEMParams(scan_range=5))
        assert eng.dist[Group.TOP].scan_range == 5
        eng.step()  # the refreshed scalar cache must be consistent
        eng.validate_state()