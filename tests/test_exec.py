"""Execution-layer semantics: pool lifecycle, scheduling, crash isolation.

Pins the acceptance properties of :mod:`repro.exec`: futures resolve in
any completion order without losing request alignment, an exception in
one work item fails only that item, a *killed* worker fails only the
batch it was running (the pool respawns it and keeps serving), priority
overtakes submission order, the shared :class:`LaunchWork` payload
produces bit-identical results in-process and across workers, and the
zero-copy shared-memory result transport recycles and reclaims its
segments (including after SIGKILL) without ever leaking ``/dev/shm``
entries.
"""

import gc
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro import SimulationConfig, run_batched, run_simulation
from repro.errors import ExperimentError, WorkerCrashError
from repro.exec import (
    MP_START_METHOD,
    SEGMENT_PREFIX,
    SHM_THRESHOLD_BYTES,
    ExecutorPool,
    LaunchWork,
    execute_launch,
    launch_cost,
)


# ---------------------------------------------------------------------
# Module-level helpers: pool workers import this module by name, so the
# payload callables must be module-level (picklable by reference).
# ---------------------------------------------------------------------

def _double(x):
    return 2 * x


def _sleep_then(value, seconds):
    time.sleep(seconds)
    return value


def _stamp(tag):
    """Monotonic start stamp — execution *order* evidence."""
    return (tag, time.monotonic())


def _raise_value_error(message):
    raise ValueError(message)


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _cfg(seed=0, n_per_side=16, steps=40, **kw):
    kw.setdefault("height", 24)
    kw.setdefault("width", 24)
    return SimulationConfig(n_per_side=n_per_side, steps=steps, seed=seed, **kw)


@pytest.fixture
def pool():
    p = ExecutorPool(2)
    yield p
    p.close()


class TestStartMethod:
    def test_never_fork(self):
        assert MP_START_METHOD in multiprocessing.get_all_start_methods()
        assert MP_START_METHOD != "fork"

    def test_sweep_reexports_for_backward_compatibility(self):
        from repro.experiments.sweep import _MP_START_METHOD

        assert _MP_START_METHOD == MP_START_METHOD


class TestPoolBasics:
    def test_submit_resolves_futures(self, pool):
        futures = [pool.submit(_double, k) for k in range(5)]
        assert [f.result(timeout=60) for f in futures] == [0, 2, 4, 6, 8]

    def test_workers_spawn_lazily(self):
        p = ExecutorPool(2)
        try:
            assert not p.started
            p.submit(_double, 1).result(timeout=60)
            assert p.started
        finally:
            p.close()

    def test_invalid_worker_count(self):
        with pytest.raises(ExperimentError):
            ExecutorPool(0)

    def test_close_is_idempotent_and_blocks_submit(self):
        p = ExecutorPool(1)
        future = p.submit(_double, 21)
        p.close()
        p.close()
        assert future.result(timeout=5) == 42  # close drained it first
        with pytest.raises(ExperimentError):
            p.submit(_double, 1)

    def test_close_without_start_is_a_noop(self):
        ExecutorPool(4).close()

    def test_concurrent_assignment_is_recorded(self, pool):
        # Two workers, two slow-ish tasks: both must be assigned at once
        # (concurrency, not parallelism — holds even on one core).
        futures = [pool.submit(_sleep_then, k, 0.2) for k in range(2)]
        assert sorted(f.result(timeout=60) for f in futures) == [0, 1]
        assert pool.peak_busy == 2


class TestScheduling:
    def test_priority_overtakes_submission_order(self):
        p = ExecutorPool(1)
        try:
            # Block the only worker, then queue low before high: the
            # high-priority task must start first once the worker frees.
            blocker = p.submit(_sleep_then, "block", 0.3)
            low = p.submit(_stamp, "low", priority=0)
            high = p.submit(_stamp, "high", priority=5)
            assert blocker.result(timeout=60) == "block"
            assert high.result(timeout=60)[1] < low.result(timeout=60)[1]
        finally:
            p.close()

    def test_heavier_cost_runs_first_at_equal_priority(self):
        p = ExecutorPool(1)
        try:
            blocker = p.submit(_sleep_then, "block", 0.3)
            light = p.submit(_stamp, "light", cost=1)
            heavy = p.submit(_stamp, "heavy", cost=1000)
            assert blocker.result(timeout=60) == "block"
            assert heavy.result(timeout=60)[1] < light.result(timeout=60)[1]
        finally:
            p.close()


class TestFailureIsolation:
    def test_exception_fails_only_its_item(self, pool):
        bad = pool.submit(_raise_value_error, "kapow")
        good = [pool.submit(_double, k) for k in range(3)]
        with pytest.raises(ValueError, match="kapow"):
            bad.result(timeout=60)
        assert [f.result(timeout=60) for f in good] == [0, 2, 4]

    def test_killed_worker_fails_only_its_batch(self, pool):
        sibling = pool.submit(_sleep_then, "sibling", 0.1)
        doomed = pool.submit(_kill_self)
        with pytest.raises(WorkerCrashError):
            doomed.result(timeout=60)
        # The sibling batch and every subsequent submission still work.
        assert sibling.result(timeout=60) == "sibling"
        assert pool.submit(_double, 5).result(timeout=60) == 10
        assert pool.respawns >= 1

    def test_repeated_crashes_keep_the_pool_alive(self, pool):
        for _ in range(2):
            with pytest.raises(WorkerCrashError):
                pool.submit(_kill_self).result(timeout=60)
        assert pool.submit(_double, 7).result(timeout=60) == 14
        assert pool.respawns >= 2

    def test_always_dying_workers_trip_the_circuit_breaker(self):
        # An initializer that dies in every child would otherwise respawn
        # processes forever without surfacing an error: the pool must
        # fail the submitted work, stop respawning, and refuse new work.
        p = ExecutorPool(1, initializer=_raise_value_error, initargs=("dead",))
        try:
            with pytest.raises(WorkerCrashError):
                p.submit(_double, 1).result(timeout=120)
            deadline = time.monotonic() + 60
            while not p._broken and time.monotonic() < deadline:
                time.sleep(0.05)
            assert p._broken
            assert p.respawns <= p._crash_limit + 1
            with pytest.raises(ExperimentError, match="disabled"):
                p.submit(_double, 2)
        finally:
            p.close()


class TestLaunchWork:
    def test_solo_launch_matches_run_simulation(self):
        cfg = _cfg(seed=3)
        out = execute_launch(LaunchWork(configs=(cfg,)))
        assert out.lanes == 1 and len(out.results) == 1
        expected = run_simulation(cfg).result
        assert out.results[0].throughput_total == expected.throughput_total

    def test_batched_launch_matches_run_batched(self):
        cfgs = tuple(_cfg(seed=s) for s in range(3))
        out = execute_launch(
            LaunchWork(configs=cfgs, batched=True, mixed=True)
        )
        assert out.lanes == 3
        expected = run_batched([c for c in cfgs], [c.seed for c in cfgs],
                               record_timeline=False)
        assert [r.throughput_total for r in out.results] == [
            r.throughput_total for r in expected.results
        ]

    def test_launch_cost_counts_real_agent_steps(self):
        work = LaunchWork(
            configs=(_cfg(n_per_side=8, steps=10), _cfg(n_per_side=16, steps=10)),
            batched=True,
            mixed=True,
        )
        assert launch_cost(work) == 16 * 10 + 32 * 10

    def test_pool_results_bit_identical_to_inline(self, pool):
        works = [
            LaunchWork(configs=tuple(_cfg(seed=s) for s in range(2)),
                       batched=True, mixed=True),
            LaunchWork(configs=(_cfg(seed=9, n_per_side=8),)),
        ]
        futures = [
            pool.submit(execute_launch, w, cost=launch_cost(w)) for w in works
        ]
        pooled = [f.result(timeout=120) for f in futures]
        inline = [execute_launch(w) for w in works]
        for p_out, i_out in zip(pooled, inline):
            assert [r.throughput_total for r in p_out.results] == [
                r.throughput_total for r in i_out.results
            ]
            assert [r.seed for r in p_out.results] == [
                r.seed for r in i_out.results
            ]


# ---------------------------------------------------------------------
# Zero-copy shared-memory transport
# ---------------------------------------------------------------------

def _big_arrays(n):
    """A payload whose buffers comfortably exceed the shm threshold."""
    return {
        "a": np.arange(n, dtype=np.float64),
        "b": np.full((n,), 7, dtype=np.int32),
    }


def _tiny_payload():
    return {"ok": True}


def _own_segments():
    """Names of repro shm segments currently on disk.

    Leak assertions compare against a snapshot taken at test start —
    residue from *other* repro processes on the machine (a killed
    service, a concurrent test run) must not fail this suite.
    """
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platform
        return set()


def _wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestShmTransport:
    def test_large_results_ride_shared_memory(self):
        pre = _own_segments()
        p = ExecutorPool(1)
        try:
            out = p.submit(_big_arrays, 100_000).result(timeout=60)
            assert out["a"][-1] == 99_999.0 and out["b"][0] == 7
            # The arrays are views over the segment mapping, not copies.
            assert not out["a"].flags["OWNDATA"]
            stats = p.transport_stats()
            assert stats["shm_results"] == 1
            assert stats["shm_payload_bytes"] >= 100_000 * 12
            # The pipe carried a constant-size head, not the arrays.
            assert stats["shm_head_bytes"] < SHM_THRESHOLD_BYTES
            assert stats["segments_in_flight"] == 1
            # Dropping the payload retires the segment (GC-driven).
            del out
            gc.collect()
            assert _wait_until(
                lambda: p.transport_stats()["segments_in_flight"] == 0
            )
        finally:
            p.close()
        assert _own_segments() <= pre

    def test_small_results_stay_inline(self, pool):
        assert pool.submit(_tiny_payload).result(timeout=60) == {"ok": True}
        stats = pool.transport_stats()
        assert stats["inline_results"] == 1
        assert stats["shm_results"] == 0

    def test_oversize_results_spill_to_legacy_path(self):
        # A result bigger than the segment cap must still arrive — via
        # the legacy in-band pickle — and be counted as a spill.
        pre = _own_segments()
        p = ExecutorPool(1, shm_threshold=1024, shm_max_bytes=64 * 1024)
        try:
            out = p.submit(_big_arrays, 100_000).result(timeout=60)
            assert out["a"][-1] == 99_999.0
            stats = p.transport_stats()
            assert stats["shm_results"] == 0
            assert stats["inline_results"] == 1
            assert stats["oversize_spills"] == 1
            assert stats["segments_in_flight"] == 0
        finally:
            p.close()
        assert _own_segments() <= pre

    def test_shm_disabled_pool_is_all_inline(self):
        pre = _own_segments()
        p = ExecutorPool(1, use_shm=False)
        try:
            out = p.submit(_big_arrays, 100_000).result(timeout=60)
            assert out["a"][-1] == 99_999.0
            stats = p.transport_stats()
            assert stats["shm_results"] == 0 and stats["inline_results"] == 1
        finally:
            p.close()
        assert _own_segments() <= pre

    def test_segments_recycle_across_results(self):
        # Sequential big results on one worker, each released before the
        # next, must reuse the parked segment instead of creating more.
        pre = _own_segments()
        p = ExecutorPool(1)
        try:
            for _ in range(4):
                out = p.submit(_big_arrays, 100_000).result(timeout=60)
                del out
                gc.collect()
                assert _wait_until(
                    lambda: p.transport_stats()["segments_in_flight"] == 0
                )
            stats = p.transport_stats()
            assert stats["shm_results"] == 4
            assert stats["segments_created"] == 1
        finally:
            p.close()
        assert _own_segments() <= pre

    def test_sigkill_reclaims_segments_and_leaks_nothing(self):
        # A worker holding a recycled segment pool is SIGKILLed: the
        # reaper must unlink its segments (nothing else ever will) and
        # /dev/shm must end clean.
        pre = _own_segments()
        p = ExecutorPool(1)
        try:
            out = p.submit(_big_arrays, 100_000).result(timeout=60)
            del out
            gc.collect()
            # Wait for the release to round-trip so the worker owns a
            # parked segment when it dies.
            assert _wait_until(
                lambda: p.transport_stats()["segments_in_flight"] == 0
            )
            assert _wait_until(lambda: bool(_own_segments() - pre))
            with pytest.raises(WorkerCrashError):
                p.submit(_kill_self).result(timeout=60)
            assert _wait_until(lambda: not (_own_segments() - pre))
            assert p.transport_stats()["segment_reclaims"] >= 1
            # The respawned worker still ships shm results.
            out = p.submit(_big_arrays, 50_000).result(timeout=60)
            assert out["a"][-1] == 49_999.0
        finally:
            p.close()
        assert _own_segments() <= pre

    def test_owner_scoped_transport_accounting(self, pool):
        a = pool.submit(_big_arrays, 100_000, owner="svc-a").result(timeout=60)
        b = pool.submit(_tiny_payload, owner="svc-b").result(timeout=60)
        assert a["b"][0] == 7 and b == {"ok": True}
        slice_a = pool.transport_stats(owner="svc-a")
        slice_b = pool.transport_stats(owner="svc-b")
        assert slice_a["shm_results"] == 1 and slice_a["shm_bytes"] > 0
        assert slice_b == {
            "shm_results": 0, "shm_bytes": 0, "inline_results": 1
        }

    def test_launch_results_round_trip_through_segments(self):
        # A real LaunchOutcome with timelines recorded (lowered
        # threshold — the timelines are small at 40 steps) must ride shm
        # and stay bit-identical to the inline run.
        pre = _own_segments()
        p = ExecutorPool(1, shm_threshold=64)
        try:
            work = LaunchWork(
                configs=(_cfg(seed=4),), record_timeline=True
            )
            pooled = p.submit(execute_launch, work).result(timeout=120)
            assert p.transport_stats()["shm_results"] == 1
            inline = execute_launch(work)
            np.testing.assert_array_equal(
                pooled.results[0].crossings_per_step,
                inline.results[0].crossings_per_step,
            )
            np.testing.assert_array_equal(
                pooled.results[0].moved_per_step,
                inline.results[0].moved_per_step,
            )
            assert (
                pooled.results[0].throughput_total
                == inline.results[0].throughput_total
            )
        finally:
            p.close()
        assert _own_segments() <= pre
