"""Property-matrix (Population) tests."""

import numpy as np
import pytest

from repro.agents import NO_FUTURE, Population
from repro.grid import place_groups
from repro.rng import PhiloxKeyedRNG
from repro.types import Group


@pytest.fixture
def placed_env():
    return place_groups(20, 10, 15, 3, PhiloxKeyedRNG(1))


@pytest.fixture
def pop(placed_env):
    return Population.from_environment(placed_env)


class TestConstruction:
    def test_sentinel_row(self, pop):
        """Index 0 is the paper's sentinel row: no agent, no future."""
        assert pop.ids[0] == 0
        assert pop.future_rows[0] == NO_FUTURE
        assert pop.future_cols[0] == NO_FUTURE

    def test_size(self, pop):
        assert pop.n_agents == 30
        assert pop.ids.shape == (31,)

    def test_positions_match_index_matrix(self, placed_env, pop):
        pop.validate_against(placed_env)

    def test_group_membership(self, pop):
        assert len(pop.members(Group.TOP)) == 15
        assert len(pop.members(Group.BOTTOM)) == 15
        assert np.all(pop.members(Group.TOP) < pop.members(Group.BOTTOM).min())

    def test_initial_tour_zero(self, pop):
        assert np.all(pop.tour == 0.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Population(0)

    def test_non_dense_index_raises(self, placed_env):
        placed_env.index[placed_env.index > 0] += 5  # break 1..n density
        with pytest.raises(ValueError):
            Population.from_environment(placed_env)


class TestFutures:
    def test_reset_futures(self, pop):
        pop.future_rows[3] = 7
        pop.front_empty[3] = True
        pop.reset_futures()
        assert np.all(pop.future_rows == NO_FUTURE)
        assert not pop.front_empty.any()


class TestCrossings:
    def test_no_initial_crossings(self, pop):
        assert pop.record_crossings(20, 3, step=0) == 0
        assert pop.crossed_count() == 0

    def test_top_crossing_detected(self, pop):
        a = pop.members(Group.TOP)[0]
        pop.rows[a] = 17  # inside the bottom band (rows 17..19)
        assert pop.record_crossings(20, 3, step=5) == 1
        assert pop.crossed[a]
        assert pop.crossed_step[a] == 5
        assert pop.crossed_count(Group.TOP) == 1
        assert pop.crossed_count(Group.BOTTOM) == 0

    def test_bottom_crossing_detected(self, pop):
        b = pop.members(Group.BOTTOM)[0]
        pop.rows[b] = 2
        assert pop.record_crossings(20, 3, step=1) == 1
        assert pop.crossed_count(Group.BOTTOM) == 1

    def test_crossing_latched(self, pop):
        a = pop.members(Group.TOP)[0]
        pop.rows[a] = 18
        pop.record_crossings(20, 3, step=2)
        pop.rows[a] = 10  # wanders back
        assert pop.record_crossings(20, 3, step=3) == 0
        assert pop.crossed_count() == 1

    def test_no_double_count(self, pop):
        a = pop.members(Group.TOP)[0]
        pop.rows[a] = 18
        pop.record_crossings(20, 3, step=2)
        assert pop.record_crossings(20, 3, step=3) == 0


class TestCopyEquality:
    def test_copy_deep(self, pop):
        dup = pop.copy()
        dup.rows[1] += 1
        assert pop.rows[1] != dup.rows[1]

    def test_equals(self, pop):
        dup = pop.copy()
        assert pop.equals(dup)
        dup.tour[2] = 1.0
        assert not pop.equals(dup)

    def test_validate_detects_drift(self, placed_env, pop):
        pop.rows[1] = (pop.rows[1] + 1) % 20
        with pytest.raises(AssertionError):
            pop.validate_against(placed_env)
