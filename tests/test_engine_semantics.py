"""Engine step semantics: the paper's synchronous two-phase update rules."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.agents.population import NO_FUTURE
from repro.types import Group


@pytest.fixture(params=["sequential", "vectorized", "tiled"])
def engine_name(request):
    return request.param


def make_engine(engine_name, model="lem", **kw):
    defaults = dict(height=32, width=32, n_per_side=60, steps=50, seed=13)
    defaults.update(kw)
    cfg = SimulationConfig(**defaults).with_model(model)
    return build_engine(cfg, engine_name)


class TestStateInvariants:
    def test_population_conserved(self, engine_name):
        eng = make_engine(engine_name)
        for _ in range(30):
            eng.step()
        assert eng.env.count(Group.TOP) == 60
        assert eng.env.count(Group.BOTTOM) == 60

    def test_index_consistency_every_step(self, engine_name):
        eng = make_engine(engine_name, model="aco")
        for _ in range(20):
            eng.step()
            eng.validate_state()

    def test_one_agent_per_cell(self, engine_name):
        eng = make_engine(engine_name)
        for _ in range(30):
            eng.step()
        idx = eng.env.index[eng.env.index > 0]
        assert len(np.unique(idx)) == idx.size

    def test_moves_are_single_cell(self, engine_name):
        eng = make_engine(engine_name)
        for _ in range(25):
            before_r = eng.pop.rows.copy()
            before_c = eng.pop.cols.copy()
            eng.step()
            dr = np.abs(eng.pop.rows - before_r)
            dc = np.abs(eng.pop.cols - before_c)
            assert dr.max() <= 1 and dc.max() <= 1

    def test_agents_stay_in_bounds(self, engine_name):
        eng = make_engine(engine_name, model="random")
        for _ in range(30):
            eng.step()
        rows = eng.pop.rows[1:]
        cols = eng.pop.cols[1:]
        assert rows.min() >= 0 and rows.max() < 32
        assert cols.min() >= 0 and cols.max() < 32


class TestTwoPhaseUpdate:
    def test_moves_only_into_cells_empty_at_step_start(self, engine_name):
        eng = make_engine(engine_name)
        for _ in range(20):
            empty_before = eng.env.mat == 0
            before_r = eng.pop.rows.copy()
            before_c = eng.pop.cols.copy()
            eng.step()
            moved = (eng.pop.rows != before_r) | (eng.pop.cols != before_c)
            moved[0] = False
            dst_r = eng.pop.rows[moved]
            dst_c = eng.pop.cols[moved]
            assert np.all(empty_before[dst_r, dst_c])

    def test_futures_cleared_after_step(self, engine_name):
        eng = make_engine(engine_name)
        eng.step()
        assert np.all(eng.pop.future_rows == NO_FUTURE)
        assert np.all(eng.pop.future_cols == NO_FUTURE)

    def test_scan_cleared_after_step(self, engine_name):
        eng = make_engine(engine_name)
        eng.step()
        assert np.all(eng.scan == 0.0)


class TestTour:
    def test_tour_monotone_nondecreasing(self, engine_name):
        eng = make_engine(engine_name, model="aco")
        prev = eng.pop.tour.copy()
        for _ in range(15):
            eng.step()
            assert np.all(eng.pop.tour >= prev)
            prev = eng.pop.tour.copy()

    def test_tour_increment_values(self, engine_name):
        """Each move adds exactly 1 or sqrt(2)."""
        eng = make_engine(engine_name)
        for _ in range(15):
            before = eng.pop.tour.copy()
            eng.step()
            delta = eng.pop.tour - before
            changed = delta[delta > 0]
            assert np.all(
                np.isclose(changed, 1.0) | np.isclose(changed, np.sqrt(2.0))
            )

    def test_moved_count_matches_tour_changes(self, engine_name):
        eng = make_engine(engine_name)
        for _ in range(10):
            before = eng.pop.tour.copy()
            report = eng.step()
            assert int(np.count_nonzero(eng.pop.tour != before)) == report.moved


class TestForwardPriority:
    def test_forward_priority_off_changes_behaviour(self):
        """Disabling the paper's modification must alter the trajectory."""
        base = dict(height=32, width=32, n_per_side=100, steps=30, seed=2)
        on = build_engine(SimulationConfig(**base, forward_priority=True), "vectorized")
        off = build_engine(SimulationConfig(**base, forward_priority=False), "vectorized")
        for _ in range(30):
            on.step()
            off.step()
        assert not on.env.equals(off.env)

    def test_free_agent_moves_forward(self):
        """A lone agent with forward priority marches straight to the wall."""
        cfg = SimulationConfig(height=16, width=16, n_per_side=1, steps=20, seed=0)
        eng = build_engine(cfg, "vectorized")
        a = eng.pop.members(Group.TOP)[0]
        col0 = int(eng.pop.cols[a])
        rows = []
        for _ in range(15):
            eng.step()
            rows.append(int(eng.pop.rows[a]))
        assert rows == sorted(rows)
        assert int(eng.pop.cols[a]) == col0
        assert rows[-1] == 15  # reached the end row


class TestPheromoneDynamics:
    def test_mass_balance(self, engine_name):
        """After one step: tau = (1-rho) tau0 everywhere except deposits."""
        eng = make_engine(engine_name, model="aco")
        params = eng.config.params
        report = eng.step()
        total = sum(eng.pher.totals().values())
        base = 2 * 32 * 32 * params.tau0 * (1 - params.rho)
        assert total > base  # deposits added
        # Deposit per mover is q / tour <= q / 1.
        assert total <= base + report.moved * params.deposit_q + 1e-9

    def test_lem_engine_has_no_pheromone(self, engine_name):
        eng = make_engine(engine_name, model="lem")
        assert eng.pher is None
