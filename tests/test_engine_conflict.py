"""Scatter-to-gather helper tests."""

import numpy as np

from repro.engine import DIRECTION_INDEX, shift, winner_rank
from repro.grid import ABSOLUTE_OFFSETS


class TestShift:
    def test_identity(self):
        arr = np.arange(12).reshape(3, 4)
        assert np.array_equal(shift(arr, 0, 0), arr)

    def test_reads_neighbor(self):
        arr = np.arange(12).reshape(3, 4)
        out = shift(arr, 1, 0)
        # out[i,j] = arr[i+1,j]
        assert np.array_equal(out[0], arr[1])
        assert np.array_equal(out[1], arr[2])

    def test_fill_outside(self):
        arr = np.ones((3, 3), dtype=np.int32)
        out = shift(arr, -1, 0, fill=9)
        assert np.all(out[0] == 9)
        assert np.all(out[1:] == 1)

    def test_diagonal(self):
        arr = np.arange(9).reshape(3, 3)
        out = shift(arr, 1, 1)
        assert out[0, 0] == arr[1, 1]
        assert out[2, 2] == 0  # filled

    def test_large_shift_all_fill(self):
        arr = np.ones((2, 2), dtype=np.int64)
        out = shift(arr, 5, 0, fill=-3)
        assert np.all(out == -3)


class TestWinnerRank:
    def test_range(self):
        u = np.linspace(0.001, 0.999, 100)
        k = np.full(100, 5)
        picks = winner_rank(u, k)
        assert picks.min() >= 0 and picks.max() <= 4

    def test_uniformity(self, rng):
        from repro.rng import Stream

        u = rng.uniform(Stream.EXPERIMENT, 0, np.arange(100000))
        picks = winner_rank(u, np.full(100000, 4))
        for v in range(4):
            assert abs(np.mean(picks == v) - 0.25) < 0.01

    def test_single_candidate(self):
        assert winner_rank(np.array([0.7]), np.array([1]))[0] == 0

    def test_clamp_at_boundary(self):
        almost_one = np.nextafter(1.0, 0.0)
        assert winner_rank(np.array([almost_one]), np.array([3]))[0] == 2


class TestDirectionIndex:
    def test_covers_all_offsets(self):
        assert set(DIRECTION_INDEX.keys()) == set(ABSOLUTE_OFFSETS)

    def test_indices_match_sweep_order(self):
        for d, off in enumerate(ABSOLUTE_OFFSETS):
            assert DIRECTION_INDEX[off] == d
