"""Tests for the ablation drivers and the implementation-notes report."""

import pytest

from repro import SimulationConfig
from repro.cuda.report import implementation_notes, implementation_report
from repro.experiments.ablations import (
    sweep_alpha_beta,
    sweep_bottleneck_gap,
    sweep_forward_priority,
    sweep_lem_rule,
    sweep_rho,
    sweep_scan_range,
    sweep_sigma,
)
from repro.models import ACOParams


@pytest.fixture
def base():
    """A small knee-density configuration for fast sweeps."""
    return SimulationConfig(height=24, width=24, n_per_side=40, steps=80, seed=1)


class TestAblationSweeps:
    def test_forward_priority_points(self, base):
        pts = sweep_forward_priority(base)
        assert [p.value for p in pts] == ["True", "False"]
        assert all(0 <= p.fraction <= 1 for p in pts)
        assert pts[0].throughput >= pts[1].throughput

    def test_lem_rule_points(self, base):
        pts = sweep_lem_rule(base.replace(n_per_side=60))
        by_rule = {p.value: p for p in pts}
        assert by_rule["ceil"].throughput >= by_rule["floor"].throughput

    def test_rho_sweep(self, base):
        pts = sweep_rho(base.with_model("aco"), rhos=(0.02, 0.5))
        assert [p.knob for p in pts] == ["rho", "rho"]
        assert all(p.throughput > 0 for p in pts)

    def test_sigma_sweep(self, base):
        pts = sweep_sigma(base, sigmas=(0.5, 2.0))
        assert len(pts) == 2

    def test_alpha_beta_sweep(self, base):
        pts = sweep_alpha_beta(base.with_model("aco"), pairs=((1.0, 2.0), (0.0, 2.0)))
        assert [p.value for p in pts] == ["1.0/2.0", "0.0/2.0"]

    def test_gap_sweep_monotone(self, base):
        pts = sweep_bottleneck_gap(base.with_model("aco"), gaps=(2, 12))
        assert pts[0].throughput <= pts[1].throughput

    def test_scan_range_sweep_respects_model(self, base):
        pts = sweep_scan_range(base.with_model("aco"), ranges=(1, 4))
        assert all(p.knob == "scan_range" for p in pts)
        pts_lem = sweep_scan_range(base, ranges=(1, 2))
        assert len(pts_lem) == 2

    def test_scan_range_keeps_aco_params(self, base):
        cfg = base.replace(params=ACOParams(rho=0.1))
        pts = sweep_scan_range(cfg, ranges=(2,))
        assert pts[0].throughput >= 0


class TestImplementationReport:
    def test_notes_cover_four_kernels(self):
        notes = implementation_notes()
        assert [n.name for n in notes] == [
            "initial_calculation",
            "tour_construction",
            "agent_movement",
            "support_reset",
        ]

    def test_paper_launch_geometry(self):
        notes = {n.name: n for n in implementation_notes(480, 480, 2560)}
        scan = notes["initial_calculation"]
        assert scan.total_threads == 480 * 480
        assert scan.threads_per_block == 256
        assert scan.blocks == 900
        tour = notes["tour_construction"]
        assert tour.total_threads >= 8 * 2560

    def test_full_occupancy_everywhere(self):
        for n in implementation_notes():
            assert n.occupancy == 1.0

    def test_halo_only_on_cell_kernels(self):
        for n in implementation_notes():
            if n.category == "cell":
                assert n.halo_passes == 3
            else:
                assert n.halo_passes == 0

    def test_divergence_savings_positive(self):
        for n in implementation_notes():
            assert n.divergence_saving >= 1.0
        # The branch-free movement kernel saves ~2x at mixed densities.
        move = [n for n in implementation_notes() if n.name == "agent_movement"][0]
        assert move.divergence_saving > 1.5

    def test_report_renders(self):
        text = implementation_report()
        assert "Implementation notes" in text
        assert text.count("100%") == 4
        assert "halo" in text
