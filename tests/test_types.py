"""Core type tests."""

import pytest

from repro.types import CellState, Group, NeighborSlot, coerce_group


class TestGroup:
    def test_labels_match_mat_values(self):
        assert int(Group.TOP) == 1
        assert int(Group.BOTTOM) == 2
        assert int(CellState.EMPTY) == 0

    def test_forward_direction(self):
        assert Group.TOP.forward_row_step == 1
        assert Group.BOTTOM.forward_row_step == -1

    def test_opponent(self):
        assert Group.TOP.opponent is Group.BOTTOM
        assert Group.BOTTOM.opponent is Group.TOP

    def test_target_rows(self):
        assert Group.TOP.target_row(480) == 479
        assert Group.BOTTOM.target_row(480) == 0

    def test_start_row_range(self):
        assert Group.TOP.start_row_range(16, 3) == (0, 3)
        assert Group.BOTTOM.start_row_range(16, 3) == (13, 16)

    def test_start_row_range_validation(self):
        with pytest.raises(ValueError):
            Group.TOP.start_row_range(16, 0)
        with pytest.raises(ValueError):
            Group.TOP.start_row_range(16, 17)


class TestNeighborSlot:
    def test_slot_values_are_paper_numbering(self):
        assert NeighborSlot.FORWARD == 1
        assert NeighborSlot.BACKWARD == 6
        assert len(NeighborSlot) == 8


class TestCoerceGroup:
    def test_from_int(self):
        assert coerce_group(1) is Group.TOP
        assert coerce_group(2) is Group.BOTTOM

    def test_from_string(self):
        assert coerce_group("top") is Group.TOP
        assert coerce_group(" BOTTOM ") is Group.BOTTOM

    def test_identity(self):
        assert coerce_group(Group.TOP) is Group.TOP

    def test_invalid(self):
        with pytest.raises(ValueError):
            coerce_group(3)
        with pytest.raises(ValueError):
            coerce_group("middle")
