"""fast_pow determinism and correctness."""

import numpy as np
import pytest

from repro.models.mathops import MAX_INT_EXPONENT, fast_pow, fast_pow_scalar


class TestFastPow:
    @pytest.mark.parametrize("p", [0.0, 1.0, 2.0, 3.0, 7.0, 16.0, -1.0, -2.0])
    def test_matches_power(self, p):
        x = np.array([0.5, 1.0, 2.0, 3.7, 100.0])
        assert np.allclose(fast_pow(x, p), np.power(x, p), rtol=1e-12)

    def test_zero_exponent_is_ones(self):
        assert np.array_equal(fast_pow(np.array([5.0, 0.0]), 0.0), [1.0, 1.0])

    def test_fractional_falls_back(self):
        x = np.array([4.0])
        assert fast_pow(x, 0.5)[0] == pytest.approx(2.0)

    def test_large_int_falls_back(self):
        x = np.array([1.01])
        p = MAX_INT_EXPONENT + 1
        assert fast_pow(x, float(p))[0] == pytest.approx(1.01**p)

    def test_scalar_path_bit_identical(self):
        """The engine-equivalence requirement: scalar == vector, bit for bit."""
        values = [0.3, 1.0, 2.5, 17.125, 1e-6, 1e6]
        for p in (1.0, 2.0, 3.0, 5.0, -2.0):
            vec = fast_pow(np.array(values), p)
            for i, v in enumerate(values):
                assert fast_pow_scalar(v, p) == vec[i]

    def test_scalar_identity(self):
        assert fast_pow_scalar(3.5, 1.0) == 3.5

    def test_negative_power_is_reciprocal(self):
        x = 2.0
        assert fast_pow_scalar(x, -3.0) == 1.0 / (x * x * x)
