"""NumPy-dispatch parity: the backend layer must not perturb a single bit.

The golden digests below were captured from the *seed* engines (before the
array-backend refactor) on the PR-2 tree: throughput plus a SHA-256 over
the final property matrix (ids/rows/cols/tour/crossed/crossed_step) and
``mat``. With ``backend="numpy"`` every ``xp.*`` call is the corresponding
``numpy`` call, so any digest drift means the dispatch layer changed the
trajectory — exactly what this suite is here to catch.
"""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine, run_batched
from repro.io import engine_state_digest

#: (model, engine, seed) -> (throughput_total, state digest) captured from
#: the pre-backend seed engines (32x32 grid, 48 agents/side, 40 steps).
GOLDEN = {
    ("lem", "sequential", 0): (55, "452e0d5c8ab1868d"),
    ("lem", "sequential", 3): (49, "5aa1382ab347b70b"),
    ("lem", "vectorized", 0): (55, "452e0d5c8ab1868d"),
    ("lem", "vectorized", 3): (49, "5aa1382ab347b70b"),
    ("lem", "tiled", 0): (55, "452e0d5c8ab1868d"),
    ("lem", "tiled", 3): (49, "5aa1382ab347b70b"),
    ("aco", "sequential", 0): (44, "1b09357ff652a574"),
    ("aco", "sequential", 3): (40, "8740d52a2dbf04cb"),
    ("aco", "vectorized", 0): (44, "1b09357ff652a574"),
    ("aco", "vectorized", 3): (40, "8740d52a2dbf04cb"),
    ("aco", "tiled", 0): (44, "1b09357ff652a574"),
    ("aco", "tiled", 3): (40, "8740d52a2dbf04cb"),
    ("random", "sequential", 0): (46, "7f5f9b4d2644b435"),
    ("random", "sequential", 3): (46, "caa148911059cfbe"),
    ("random", "vectorized", 0): (46, "7f5f9b4d2644b435"),
    ("random", "vectorized", 3): (46, "caa148911059cfbe"),
    ("random", "tiled", 0): (46, "7f5f9b4d2644b435"),
    ("random", "tiled", 3): (46, "caa148911059cfbe"),
    ("greedy", "sequential", 0): (80, "e331fadb01297bac"),
    ("greedy", "sequential", 3): (85, "5aa2e412ba995ed9"),
    ("greedy", "vectorized", 0): (80, "e331fadb01297bac"),
    ("greedy", "vectorized", 3): (85, "5aa2e412ba995ed9"),
    ("greedy", "tiled", 0): (80, "e331fadb01297bac"),
    ("greedy", "tiled", 3): (85, "5aa2e412ba995ed9"),
}


def _config(model: str, seed: int) -> SimulationConfig:
    return SimulationConfig(
        height=32, width=32, n_per_side=48, steps=40, seed=seed
    ).with_model(model)


@pytest.mark.parametrize(("model", "engine", "seed"), sorted(GOLDEN))
def test_numpy_dispatch_matches_seed_engines(model, engine, seed):
    """Every engine x model x seed reproduces the pre-backend trajectory."""
    eng = build_engine(_config(model, seed), engine=engine, backend="numpy")
    result = eng.run(record_timeline=False)
    expected_tp, expected_digest = GOLDEN[(model, engine, seed)]
    assert result.throughput_total == expected_tp
    assert engine_state_digest(eng) == expected_digest


@pytest.mark.parametrize("model", ["lem", "aco"])
def test_batched_lanes_match_seed_trajectories(model):
    """Batched lanes under NumPy dispatch reproduce the same golden states."""
    seeds = (0, 3)
    configs = [_config(model, s) for s in seeds]
    eng_batched = run_batched(configs, seeds, record_timeline=False)
    for seed, result in zip(seeds, eng_batched.results):
        assert result.throughput_total == GOLDEN[(model, "vectorized", seed)][0]


def test_default_backend_equals_explicit_numpy():
    """A config that never mentions backends runs the numpy dispatch path."""
    cfg = _config("lem", 0)
    assert cfg.backend == "numpy"
    implicit = build_engine(cfg)
    explicit = build_engine(cfg.replace(backend="numpy"))
    implicit.run(record_timeline=False)
    explicit.run(record_timeline=False)
    assert implicit.state_equals(explicit)
    assert engine_state_digest(implicit) == engine_state_digest(explicit)


def test_engine_backend_is_resolved_from_config():
    eng = build_engine(_config("lem", 0))
    assert eng.backend.name == "numpy"
    assert eng.xp is np
    assert eng.rng.backend is eng.backend
    assert eng.model.backend is eng.backend
    assert eng.env.backend is eng.backend
    assert eng.pop.backend is eng.backend


def test_timeline_buffers_match_step_reports():
    """Preallocated timelines carry exactly the per-step counters."""
    cfg = _config("lem", 1)
    recorder = build_engine(cfg, engine="vectorized")
    stepper = build_engine(cfg, engine="vectorized")
    moved, crossed = [], []
    for _ in range(cfg.steps):
        report = stepper.step()
        moved.append(report.moved)
        crossed.append(report.new_crossings)
    result = recorder.run()
    assert result.moved_per_step.tolist() == moved
    assert result.crossings_per_step.tolist() == crossed
    assert result.moved_per_step.dtype == np.int64


def test_record_timeline_false_fast_path_returns_none():
    result = build_engine(_config("lem", 1)).run(record_timeline=False)
    assert result.moved_per_step is None
    assert result.crossings_per_step is None


def test_batched_timeline_buffers_match_list_append_semantics():
    """The (steps, B) device buffer equals the old per-step list stacking."""
    seeds = (0, 1, 2)
    cfg = _config("aco", 0)
    out = run_batched(cfg, seeds, record_timeline=True)
    engine_cls_runs = [
        build_engine(cfg, seed=s).run(record_timeline=True) for s in seeds
    ]
    for batched, solo in zip(out.results, engine_cls_runs):
        np.testing.assert_array_equal(batched.moved_per_step, solo.moved_per_step)
        np.testing.assert_array_equal(
            batched.crossings_per_step, solo.crossings_per_step
        )
