"""Warm-state reuse: cached placement/distance state must be invisible.

A warm launch (process-level caches primed by an earlier same-geometry
launch) must be bit-identical to a cold one — the cache returns exactly
what a fresh build would have computed, and nothing an engine mutates
during a run may leak back into the cache. These tests pin both
directions: results equality cold-vs-warm, and cache-hit accounting
proving the reuse actually happened.
"""

import numpy as np

from repro import SimulationConfig, run_batched, run_simulation
from repro.engine import reset_warmstate, warmstate_stats
from repro.engine.warmstate import cached_dist_tables, cached_placement


def _cfg(seed=0, **kw):
    kw.setdefault("height", 24)
    kw.setdefault("width", 24)
    kw.setdefault("n_per_side", 16)
    kw.setdefault("steps", 30)
    return SimulationConfig(seed=seed, **kw)


def _run_fingerprint(cfg, engine="vectorized"):
    out = run_simulation(cfg, engine=engine)
    r = out.result
    return (
        r.throughput_total,
        r.throughput_top,
        r.throughput_bottom,
        None if r.crossings_per_step is None else r.crossings_per_step.tobytes(),
        None if r.moved_per_step is None else r.moved_per_step.tobytes(),
    )


class TestBitIdentity:
    def test_warm_solo_run_identical_to_cold(self):
        reset_warmstate()
        cfg = _cfg(seed=11)
        cold = _run_fingerprint(cfg)
        stats = warmstate_stats()
        assert stats["placement_misses"] >= 1
        # Second run of the same geometry+seed hits every cache …
        warm = _run_fingerprint(cfg)
        after = warmstate_stats()
        assert after["placement_hits"] > stats["placement_hits"]
        assert after["dist_tables_hits"] > stats["dist_tables_hits"]
        # … and computes exactly the same trajectories.
        assert warm == cold

    def test_warm_run_unaffected_by_prior_runs_mutations(self):
        # A solo engine mutates its environment in place while running;
        # three back-to-back runs must all match (the cache hands out
        # pristine state every time).
        reset_warmstate()
        cfg = _cfg(seed=3)
        prints = [_run_fingerprint(cfg, engine="sequential") for _ in range(3)]
        assert prints[0] == prints[1] == prints[2]

    def test_warm_batched_run_identical_to_cold(self):
        reset_warmstate()
        cfgs = [_cfg(seed=s) for s in range(3)]
        seeds = [c.seed for c in cfgs]
        cold = run_batched(cfgs, seeds, record_timeline=True)
        before = warmstate_stats()
        warm = run_batched(cfgs, seeds, record_timeline=True)
        after = warmstate_stats()
        assert after["placement_hits"] > before["placement_hits"]
        assert after["dist_stacks_hits"] > before["dist_stacks_hits"]
        for c, w in zip(cold.results, warm.results):
            assert c.throughput_total == w.throughput_total
            np.testing.assert_array_equal(
                c.crossings_per_step, w.crossings_per_step
            )

    def test_different_seeds_do_not_share_placement(self):
        reset_warmstate()
        env_a, pop_a = cached_placement(_cfg(seed=1), 1)
        env_b, pop_b = cached_placement(_cfg(seed=2), 2)
        assert not np.array_equal(pop_a.rows, pop_b.rows) or not np.array_equal(
            pop_a.cols, pop_b.cols
        )


class TestCacheMechanics:
    def test_cached_placement_returns_same_objects_on_hit(self):
        reset_warmstate()
        cfg = _cfg(seed=5)
        a = cached_placement(cfg, 5)
        b = cached_placement(cfg, 5)
        assert a[0] is b[0] and a[1] is b[1]

    def test_copy_requests_are_independent(self):
        reset_warmstate()
        cfg = _cfg(seed=5)
        shared_env, shared_pop = cached_placement(cfg, 5)
        env, pop = cached_placement(cfg, 5, copy=True)
        assert env is not shared_env and pop is not shared_pop
        env.mat[0, 0] = 99
        pop.rows[0] = -1
        # The cached copies stay pristine.
        env2, pop2 = cached_placement(cfg, 5)
        assert env2.mat[0, 0] != 99
        assert pop2.rows[0] != -1

    def test_dist_tables_cached_per_geometry(self):
        from repro.backend import resolve_backend

        reset_warmstate()
        backend = resolve_backend("numpy")
        a = cached_dist_tables(24, 1, backend)
        b = cached_dist_tables(24, 1, backend)
        c = cached_dist_tables(48, 1, backend)
        assert a is b and a is not c

    def test_stats_shape_and_reset(self):
        reset_warmstate()
        stats = warmstate_stats()
        for name in ("placement", "dist_tables", "dist_stacks"):
            for field in ("hits", "misses", "evictions", "entries"):
                assert f"{name}_{field}" in stats
        assert all(v == 0 for v in stats.values())
