"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, build_engine
from repro.engine import shift, winner_rank
from repro.grid import DistanceTable
from repro.models import fast_pow
from repro.models.mathops import fast_pow_scalar
from repro.rng import PhiloxKeyedRNG, Stream, categorical, philox4x32
from repro.types import Group

# Engine runs are comparatively slow; keep example counts tight and silence
# the too-slow health check for the full-simulation properties.
slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPhiloxProperties:
    @given(
        counter=st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=4),
        key=st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_bijection_determinism(self, counter, key):
        c = np.array([[w] for w in counter], dtype=np.uint32)
        k = np.array([[w] for w in key], dtype=np.uint32)
        assert np.array_equal(philox4x32(c, k), philox4x32(c, k))

    @given(
        seed=st.integers(0, 2**64 - 1),
        stream=st.sampled_from(list(Stream)),
        step=st.integers(0, 2**40),
        lane=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_uniform_always_in_open_unit_interval(self, seed, stream, step, lane):
        u = PhiloxKeyedRNG(seed).uniform_scalar(stream, step, lane)
        assert 0.0 < u < 1.0

    @given(
        weights=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=2, max_size=8
        ),
        u=st.floats(1e-9, 1.0, exclude_max=True),
    )
    @settings(max_examples=200, deadline=None)
    def test_categorical_never_selects_zero_weight(self, weights, u):
        w = np.array([weights])
        idx = int(categorical(w, np.array([u]))[0])
        if sum(weights) <= 0:
            assert idx == -1
        else:
            assert weights[idx] > 0.0


class TestNumericProperties:
    @given(
        base=st.floats(1e-6, 1e6, allow_nan=False),
        exponent=st.integers(-8, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_fast_pow_scalar_vector_agree_bitwise(self, base, exponent):
        vec = float(fast_pow(np.array([base]), float(exponent))[0])
        assert fast_pow_scalar(base, float(exponent)) == vec

    @given(height=st.integers(4, 200), group=st.sampled_from([Group.TOP, Group.BOTTOM]))
    @settings(max_examples=50, deadline=None)
    def test_distance_ranking_holds_everywhere(self, height, group):
        """Slot 1 is never farther than any other in-bounds slot."""
        table = DistanceTable(height, group).table
        forward = table[:, 0]
        others = table[:, 1:]
        finite = np.isfinite(forward)
        assert np.all(forward[finite, None] <= others[finite] + 1e-12)


class TestShiftProperties:
    @given(
        h=st.integers(1, 12),
        w=st.integers(1, 12),
        dr=st.integers(-3, 3),
        dc=st.integers(-3, 3),
    )
    @settings(max_examples=100, deadline=None)
    def test_shift_matches_bruteforce(self, h, w, dr, dc):
        arr = np.arange(h * w, dtype=np.int64).reshape(h, w) + 1
        out = shift(arr, dr, dc, fill=0)
        for i in range(h):
            for j in range(w):
                si, sj = i + dr, j + dc
                expected = arr[si, sj] if 0 <= si < h and 0 <= sj < w else 0
                assert out[i, j] == expected

    @given(
        u=st.floats(0.0, 1.0, exclude_max=True),
        k=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_winner_rank_in_range(self, u, k):
        pick = int(winner_rank(np.float64(u), np.int64(k)))
        assert 0 <= pick < k


class TestPheromoneProperties:
    @given(
        rho=st.floats(0.01, 0.9),
        seed=st.integers(0, 200),
    )
    @slow
    def test_pheromone_mass_bounded(self, rho, seed):
        """Total pheromone stays within [tau_min * cells, steady-state + deposits]."""
        from repro.models import ACOParams

        cfg = SimulationConfig(
            height=16, width=16, n_per_side=25, steps=15, seed=seed,
            params=ACOParams(rho=rho),
        )
        eng = build_engine(cfg, "vectorized")
        params = cfg.params
        cells = 16 * 16
        for _ in range(15):
            report = eng.step()
            for total in eng.pher.totals().values():
                assert total >= params.tau_min * cells - 1e-9
                # One step adds at most q per mover (L >= 1 after a move).
                assert total <= params.tau0 * cells + 15 * 50 * params.deposit_q

    @given(gap=st.integers(1, 14), seed=st.integers(0, 100))
    @slow
    def test_obstacles_are_inviolable(self, gap, seed):
        from repro.grid import ObstacleSpec

        cfg = SimulationConfig(
            height=16, width=16, n_per_side=20, steps=10, seed=seed,
            obstacles=ObstacleSpec("bottleneck", gap=gap),
        )
        eng = build_engine(cfg, "vectorized")
        wall = eng.env.obstacle_mask().copy()
        for _ in range(10):
            eng.step()
        assert np.array_equal(eng.env.obstacle_mask(), wall)
        assert not wall[eng.pop.rows[1:], eng.pop.cols[1:]].any()
        eng.validate_state()


class TestSimulationProperties:
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(4, 40),
        model=st.sampled_from(["lem", "aco", "random", "greedy"]),
    )
    @slow
    def test_engines_bit_identical(self, seed, n, model):
        """The headline invariant under arbitrary seeds and populations."""
        cfg = SimulationConfig(
            height=16, width=16, n_per_side=n, steps=12, seed=seed
        ).with_model(model)
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        til = build_engine(cfg, "tiled")
        for _ in range(12):
            rs, rv, rt = seq.step(), vec.step(), til.step()
            assert rs == rv == rt
        assert seq.state_equals(vec)
        assert vec.state_equals(til)

    @given(seed=st.integers(0, 1000), model=st.sampled_from(["lem", "aco"]))
    @slow
    def test_conservation_and_consistency(self, seed, model):
        cfg = SimulationConfig(
            height=16, width=16, n_per_side=30, steps=15, seed=seed
        ).with_model(model)
        eng = build_engine(cfg, "vectorized")
        for _ in range(15):
            eng.step()
        eng.validate_state()
        assert eng.env.count(Group.TOP) == 30
        assert eng.env.count(Group.BOTTOM) == 30

    @given(seed=st.integers(0, 500))
    @slow
    def test_throughput_monotone_in_steps(self, seed):
        """Crossing counts are cumulative: more steps never reduce them."""
        cfg = SimulationConfig(height=16, width=16, n_per_side=20, steps=30, seed=seed)
        eng = build_engine(cfg, "vectorized")
        last = 0
        for _ in range(30):
            eng.step()
            now = eng.throughput()
            assert now >= last
            last = now
