"""t-test / Wald test / summary helper tests."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats import (
    mean_ci,
    paired_ttest,
    summarize,
    wald_test,
    welch_ttest,
)


class TestWelch:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 40)
        b = rng.normal(0.5, 2, 35)
        ours = welch_ttest(a, b)
        ref = sps.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.pvalue == pytest.approx(ref.pvalue)

    def test_identical_samples_p_one(self):
        a = np.array([1.0, 1.0, 1.0])
        res = welch_ttest(a, a)
        assert res.pvalue == 1.0
        assert not res.significant

    def test_clear_difference_significant(self):
        res = welch_ttest(np.zeros(30) + 0.01 * np.arange(30), np.full(30, 5.0))
        assert res.significant

    def test_needs_two_observations(self):
        with pytest.raises(StatsError):
            welch_ttest([1.0], [1.0, 2.0])


class TestPaired:
    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=25)
        b = a + rng.normal(0.3, 0.5, size=25)
        ours = paired_ttest(a, b)
        ref = sps.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.pvalue == pytest.approx(ref.pvalue)

    def test_shape_check(self):
        with pytest.raises(StatsError):
            paired_ttest([1.0, 2.0], [1.0])

    def test_constant_difference(self):
        res = paired_ttest(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0, 3.0]))
        assert res.pvalue == 1.0


class TestWald:
    def test_single_coefficient_matches_z_squared(self):
        coef = np.array([0.0, 2.0])
        cov = np.diag([1.0, 0.25])
        res = wald_test(coef, cov, [1])
        assert res.statistic == pytest.approx((2.0 / 0.5) ** 2)

    def test_joint_test(self):
        coef = np.array([1.0, 1.0])
        cov = np.eye(2)
        res = wald_test(coef, cov, [0, 1])
        assert res.statistic == pytest.approx(2.0)
        assert res.df == 2.0

    def test_empty_indices(self):
        with pytest.raises(StatsError):
            wald_test(np.array([1.0]), np.eye(1), [])


class TestSummary:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == 2.5

    def test_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(StatsError):
            summarize([])

    def test_str_rendering(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestMeanCI:
    def test_halfwidth_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        _, hw_small = mean_ci(rng.normal(size=10))
        _, hw_big = mean_ci(rng.normal(size=1000))
        assert hw_big < hw_small

    def test_single_observation_infinite(self):
        mean, hw = mean_ci([3.0])
        assert mean == 3.0 and np.isinf(hw)

    def test_validation(self):
        with pytest.raises(StatsError):
            mean_ci([])
        with pytest.raises(StatsError):
            mean_ci([1.0, 2.0], confidence=1.5)
