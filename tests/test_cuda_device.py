"""Device registry tests (paper Table I values)."""

from repro.cuda import CC_20_LIMITS, GTX_560_TI_448, I7_930


class TestGpuSpec:
    def test_table1_core_count(self):
        assert GTX_560_TI_448.total_cores == 448

    def test_table1_clock(self):
        assert GTX_560_TI_448.clock_ghz == 1.464

    def test_table1_memory(self):
        assert GTX_560_TI_448.dram_description == "1.25 GB GDDR5"
        assert GTX_560_TI_448.l2_cache_bytes == 768 * 1024

    def test_fermi_geometry(self):
        assert GTX_560_TI_448.sm_count * GTX_560_TI_448.cores_per_sm == 448

    def test_peak_rates(self):
        assert GTX_560_TI_448.peak_ips == 448 * 1.464e9
        assert GTX_560_TI_448.peak_bandwidth_bytes == 152.0e9


class TestCpuSpec:
    def test_table1_values(self):
        assert I7_930.cores == 4
        assert I7_930.clock_ghz == 2.8
        assert I7_930.l3_cache_bytes == 8 * 1024 * 1024
        assert I7_930.dram_description == "6 GB DDR3"

    def test_single_thread_rate(self):
        assert I7_930.scalar_ips == 2.8e9 * I7_930.effective_ipc


class TestCC20Limits:
    def test_fermi_limits(self):
        assert CC_20_LIMITS.max_threads_per_sm == 1536
        assert CC_20_LIMITS.max_blocks_per_sm == 8
        assert CC_20_LIMITS.max_warps_per_sm == 48
        assert CC_20_LIMITS.warp_size == 32
        assert CC_20_LIMITS.registers_per_sm == 32768
        assert CC_20_LIMITS.shared_memory_per_sm == 49152

    def test_warps_consistent_with_threads(self):
        assert (
            CC_20_LIMITS.max_warps_per_sm * CC_20_LIMITS.warp_size
            == CC_20_LIMITS.max_threads_per_sm
        )
