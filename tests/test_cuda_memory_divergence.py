"""Memory traffic and warp divergence model tests."""

import pytest

from repro.cuda import (
    GTX_560_TI_448,
    MemoryTraffic,
    bank_conflict_degree,
    branchless_factor,
    effective_bandwidth_bytes,
    expected_serialization_factor,
    global_transactions_per_warp,
    prob_warp_diverges,
)


class TestGlobalTransactions:
    def test_coalesced_4byte(self):
        """32 threads x 4B = 128B = exactly one transaction."""
        assert global_transactions_per_warp(4, coalesced=True) == 1

    def test_coalesced_8byte(self):
        assert global_transactions_per_warp(8, coalesced=True) == 2

    def test_scattered_costs_one_per_thread(self):
        assert global_transactions_per_warp(4, coalesced=False) == 32

    def test_zero_bytes(self):
        assert global_transactions_per_warp(0) == 0


class TestBankConflicts:
    def test_stride_one_conflict_free(self):
        assert bank_conflict_degree(1) == 1

    def test_stride_two_degree_two(self):
        assert bank_conflict_degree(2) == 2

    def test_stride_32_fully_serialised(self):
        assert bank_conflict_degree(32) == 32

    def test_odd_strides_conflict_free(self):
        for s in (1, 3, 5, 7, 17, 31):
            assert bank_conflict_degree(s) == 1

    def test_broadcast(self):
        assert bank_conflict_degree(0) == 1


class TestBandwidth:
    def test_full_efficiency_is_peak(self):
        assert effective_bandwidth_bytes(GTX_560_TI_448, 1.0) == 152e9

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            effective_bandwidth_bytes(GTX_560_TI_448, 0.0)
        with pytest.raises(ValueError):
            effective_bandwidth_bytes(GTX_560_TI_448, 1.5)

    def test_traffic_total_and_time(self):
        t = MemoryTraffic(loads=100e9, stores=52e9)
        assert t.total == 152e9
        assert t.time_seconds(GTX_560_TI_448) == pytest.approx(1.0)


class TestDivergence:
    def test_uniform_predicates_never_diverge(self):
        assert prob_warp_diverges(0.0) == 0.0
        assert prob_warp_diverges(1.0) == 0.0

    def test_mixed_predicates_almost_surely_diverge(self):
        assert prob_warp_diverges(0.5) == pytest.approx(1.0, abs=1e-6)

    def test_serialization_factor_bounds(self):
        assert expected_serialization_factor(0.0) == 1.0
        assert expected_serialization_factor(0.5) == pytest.approx(2.0, abs=1e-6)

    def test_three_path_branch(self):
        assert expected_serialization_factor(0.5, paths=3) == pytest.approx(3.0, abs=1e-5)

    def test_branchless_is_one(self):
        """The paper's index-mapping kernels pay no divergence penalty."""
        assert branchless_factor() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_warp_diverges(1.5)
        with pytest.raises(ValueError):
            expected_serialization_factor(0.5, paths=0)
