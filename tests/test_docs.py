"""Docs stay honest: API.md mirrors the live route table, links resolve.

`docs/API.md` documents each route under a ``### METHOD /path`` heading;
this test diffs that set against `repro.service.http.ROUTES`, so adding
or removing an endpoint without updating the reference fails CI. The
link check walks every relative markdown link in `docs/` and the README
and asserts the target exists.
"""

import re
from pathlib import Path

import pytest

from repro.service.http import ROUTES

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "API.md"

_HEADING = re.compile(r"^### (GET|POST|PUT|DELETE|PATCH) (\S+)", re.MULTILINE)
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _documented_routes():
    text = API_DOC.read_text(encoding="utf-8")
    return {
        # Headings escape <id> as &lt;id&gt; so GitHub renders it.
        (m.group(1), m.group(2).replace("&lt;", "<").replace("&gt;", ">"))
        for m in _HEADING.finditer(text)
    }


class TestApiReference:
    def test_api_doc_exists(self):
        assert API_DOC.is_file(), "docs/API.md is missing"

    def test_every_route_documented(self):
        documented = _documented_routes()
        served = {(method, path) for method, path, _ in ROUTES}
        missing = served - documented
        assert not missing, (
            f"routes served but undocumented in docs/API.md: {sorted(missing)}"
        )

    def test_no_phantom_routes_documented(self):
        documented = _documented_routes()
        served = {(method, path) for method, path, _ in ROUTES}
        phantom = documented - served
        assert not phantom, (
            f"routes documented in docs/API.md but not served: "
            f"{sorted(phantom)} — the doc went stale"
        )

    def test_routes_table_is_complete_surface(self):
        # Belt and braces: the handler dispatch is hand-written, so pin
        # the table's shape too.
        assert len(ROUTES) == len({(m, p) for m, p, _ in ROUTES})
        for method, path, summary in ROUTES:
            assert path.startswith("/")
            assert summary


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


@pytest.mark.parametrize(
    "md_file", _markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(md_file):
    text = md_file.read_text(encoding="utf-8")
    broken = []
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md_file.parent / path).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # Points outside the repo (e.g. the CI badge's ../../actions
            # GitHub URL path) — not checkable on disk.
            continue
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{md_file.name}: broken relative links {broken}"
