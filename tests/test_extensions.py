"""Tests for the Section VII future-work extensions."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.errors import ConfigurationError
from repro.extensions import PanicAlarm, panic_variant
from repro.models import ACOParams, LEMParams, RandomParams


class TestPanicVariant:
    def test_lem_panic_always_moves(self):
        p = panic_variant(LEMParams())
        assert p.rule == "ceil"
        p.validate()

    def test_aco_panic_weights(self):
        base = ACOParams()
        p = panic_variant(base)
        assert p.beta >= 3.0
        assert p.rho > base.rho
        p.validate()

    def test_unknown_params_raise(self):
        with pytest.raises(ConfigurationError):
            panic_variant(RandomParams())


class TestPanicAlarm:
    def _cfg(self, model="lem"):
        return SimulationConfig(
            height=32, width=32, n_per_side=140, steps=80, seed=12
        ).with_model(model)

    def test_fires_once_at_trigger(self):
        eng = build_engine(self._cfg(), "vectorized")
        alarm = PanicAlarm(trigger_step=20)
        eng.run(callback=alarm, record_timeline=False)
        assert alarm.fired
        assert alarm.fired_at == 20

    def test_changes_trajectory(self):
        base = build_engine(self._cfg(), "vectorized")
        base.run(record_timeline=False)
        panicked = build_engine(self._cfg(), "vectorized")
        panicked.run(callback=PanicAlarm(trigger_step=10), record_timeline=False)
        assert not base.env.equals(panicked.env)

    def test_no_effect_before_trigger(self):
        a = build_engine(self._cfg(), "vectorized")
        b = build_engine(self._cfg(), "vectorized")
        alarm = PanicAlarm(trigger_step=30)
        for i in range(30):
            ra = a.step()
            alarm(b, b.step())
            assert ra is not None
        assert a.state_equals(b)
        assert alarm.fired  # fires exactly at the boundary

    def test_panicked_lem_unjams_medium_density(self):
        """At the jamming knee, panic (always-move) raises throughput."""
        cfg = self._cfg("lem").replace(n_per_side=90, steps=120)
        calm = build_engine(cfg, "vectorized")
        calm.run(record_timeline=False)
        panicked = build_engine(cfg, "vectorized")
        panicked.run(callback=PanicAlarm(trigger_step=5), record_timeline=False)
        assert panicked.throughput() > calm.throughput()

    def test_equivalence_preserved_under_panic(self):
        cfg = self._cfg("aco").replace(n_per_side=60, steps=40)
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        alarm_s = PanicAlarm(trigger_step=15)
        alarm_v = PanicAlarm(trigger_step=15)
        for _ in range(40):
            alarm_s(seq, seq.step())
            alarm_v(vec, vec.step())
        assert seq.state_equals(vec)

    def test_swap_to_pheromone_model_creates_field(self):
        eng = build_engine(self._cfg("lem"), "vectorized")
        assert eng.pher is None
        eng.swap_model(ACOParams())
        assert eng.pher is not None
        eng.step()
        eng.validate_state()

    def test_swap_away_from_pheromone_drops_field(self):
        eng = build_engine(self._cfg("aco"), "vectorized")
        eng.swap_model(LEMParams())
        assert eng.pher is None

    def test_trigger_validation(self):
        with pytest.raises(ConfigurationError):
            PanicAlarm(trigger_step=-1)


class TestHeterogeneousSpeeds:
    def _cfg(self, slow=0.5, period=2):
        return SimulationConfig(
            height=32, width=32, n_per_side=50, steps=120, seed=21,
            slow_fraction=slow, slow_period=period,
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(slow_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(slow_period=1)

    def test_eligibility_mask_default_all(self):
        eng = build_engine(self._cfg(slow=0.0), "vectorized")
        assert eng.eligible_mask(3).all()

    def test_slow_fraction_assignment(self):
        eng = build_engine(self._cfg(slow=0.5), "vectorized")
        frac = eng._slow_mask[1:].mean()
        assert frac == pytest.approx(0.5, abs=0.15)
        assert not eng._slow_mask[0]

    def test_slow_agents_gated_by_period(self):
        eng = build_engine(self._cfg(slow=1.0, period=3), "vectorized")
        masks = np.stack([eng.eligible_mask(t)[1:] for t in range(3)])
        # Each agent is eligible in exactly one of any 3 consecutive steps.
        assert np.array_equal(masks.sum(axis=0), np.ones(eng.pop.n_agents))

    def test_slow_crowd_crosses_later(self):
        from repro.metrics import ThroughputTracker

        def mean_step(slow):
            eng = build_engine(self._cfg(slow=slow), "vectorized")
            tracker = ThroughputTracker()
            eng.run(callback=tracker, record_timeline=False)
            return tracker.summary().mean_crossing_step

        assert mean_step(0.8) > mean_step(0.0)

    def test_equivalence_with_speed_classes(self):
        cfg = self._cfg(slow=0.4).replace(steps=40)
        for model in ("lem", "aco"):
            seq = build_engine(cfg.with_model(model), "sequential")
            vec = build_engine(cfg.with_model(model), "vectorized")
            til = build_engine(cfg.with_model(model), "tiled")
            for _ in range(40):
                rs, rv, rt = seq.step(), vec.step(), til.step()
                assert rs == rv == rt
            assert seq.state_equals(vec) and vec.state_equals(til)

    def test_slow_agents_move_less(self):
        cfg = self._cfg(slow=0.5, period=2).replace(steps=60)
        eng = build_engine(cfg, "vectorized")
        eng.run(record_timeline=False)
        slow_tours = eng.pop.tour[eng._slow_mask]
        fast_tours = eng.pop.tour[~eng._slow_mask & (eng.pop.ids > 0)]
        assert slow_tours.mean() < fast_tours.mean()