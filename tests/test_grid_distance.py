"""Distance table tests: the paper's slot ranking must hold."""

import math

import numpy as np
import pytest

from repro.grid import MIN_DISTANCE, DistanceTable, build_distance_tables
from repro.types import Group, NeighborSlot


class TestRanking:
    """Paper Section IV.b: slot 1 nearest, then 2/3, then 4/5, 6, 7/8."""

    @pytest.mark.parametrize("group", [Group.TOP, Group.BOTTOM])
    def test_paper_ordering_midgrid(self, group):
        table = DistanceTable(100, group)
        row = 50
        d = table.table[row]
        assert d[0] < d[1] == d[2] < d[3] == d[4] < d[5] < d[6] == d[7]

    def test_forward_decrements_row_distance(self):
        table = DistanceTable(100, Group.TOP)
        for row in range(1, 98):
            d_here = abs(table.target_row - row)
            assert table.distance(row, NeighborSlot.FORWARD) == pytest.approx(
                max(d_here - 1, MIN_DISTANCE)
            )

    def test_diagonal_formula(self):
        table = DistanceTable(100, Group.TOP)
        row = 30
        d = abs(table.target_row - (row + 1))
        expected = math.sqrt(d * d + 1.0)
        assert table.distance(row, NeighborSlot.FORWARD_LEFT) == pytest.approx(expected)
        assert table.distance(row, NeighborSlot.FORWARD_RIGHT) == pytest.approx(expected)


class TestBounds:
    def test_out_of_grid_is_inf(self):
        table = DistanceTable(50, Group.TOP)
        # Backward from row 0 leaves the grid.
        assert math.isinf(table.distance(0, NeighborSlot.BACKWARD))
        # Forward from the last row leaves the grid.
        assert math.isinf(table.distance(49, NeighborSlot.FORWARD))

    def test_bottom_symmetry(self):
        top = DistanceTable(64, Group.TOP)
        bottom = DistanceTable(64, Group.BOTTOM)
        # Row r for TOP mirrors row H-1-r for BOTTOM, slot for slot.
        for row in (0, 1, 31, 62, 63):
            assert np.allclose(
                top.table[row], bottom.table[63 - row], equal_nan=True
            )

    def test_target_row_floor(self):
        """Distances are floored at MIN_DISTANCE (eq. 1 requires D != 0)."""
        table = DistanceTable(50, Group.TOP)
        # An agent one row before the target: its forward cell IS the target.
        d = table.distance(48, NeighborSlot.FORWARD)
        assert d == MIN_DISTANCE

    def test_positive_everywhere(self):
        for group in (Group.TOP, Group.BOTTOM):
            table = DistanceTable(37, group)
            assert np.all(table.table > 0)

    def test_read_only(self):
        table = DistanceTable(20, Group.TOP)
        with pytest.raises(ValueError):
            table.table[0, 0] = 5.0


class TestAccessors:
    def test_distances_batch(self):
        table = DistanceTable(40, Group.TOP)
        rows = np.array([3, 17, 30])
        batch = table.distances(rows)
        assert batch.shape == (3, 8)
        assert np.array_equal(batch, table.table[rows])

    def test_vertical_distance(self):
        table = DistanceTable(40, Group.BOTTOM)
        assert table.vertical_distance(0) == 0
        assert table.vertical_distance(39) == 39

    def test_slot_validation(self):
        table = DistanceTable(40, Group.TOP)
        with pytest.raises(ValueError):
            table.distance(0, 0)
        with pytest.raises(ValueError):
            table.distance(0, 9)

    def test_height_validation(self):
        with pytest.raises(ValueError):
            DistanceTable(1, Group.TOP)

    def test_build_both_groups(self):
        tables = build_distance_tables(33)
        assert set(tables) == {Group.TOP, Group.BOTTOM}
        assert tables[Group.TOP].target_row == 32
        assert tables[Group.BOTTOM].target_row == 0
