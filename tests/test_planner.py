"""Shared lane planner: grouping, duplicate demotion, padded packing.

The planner is consumed by both the sweep runner (offline grids) and the
service scheduler (online micro-batches); these tests pin its semantics
directly on :class:`LaneRequest` lists, independent of either caller.
"""

import pytest

from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.planner import (
    BATCHABLE_ENGINES,
    MAX_PAD_WASTE_CEILING,
    MIN_PAD_WASTE,
    LaneRequest,
    derived_pad_waste,
    plan_lanes,
    validate_plan_parameters,
)


def _cfg(n_per_side=16, **kw):
    kw.setdefault("height", 24)
    kw.setdefault("width", 24)
    kw.setdefault("steps", 50)
    return SimulationConfig(n_per_side=n_per_side, **kw)


def _req(index, seed=0, engine="vectorized", batch="a", pad="p", agents=32,
         config=None, priority=0):
    return LaneRequest(
        index=index,
        seed=seed,
        engine=engine,
        batch_key=(batch,),
        pad_key=(pad,),
        agents=agents,
        config=config,
        priority=priority,
    )


def _covered(batches):
    return sorted(i for b in batches for i in b.indices)


class TestSameKeyBatching:
    def test_shared_key_stacks_into_one_batch(self):
        reqs = [_req(i, seed=i) for i in range(3)]
        batches = plan_lanes(reqs, max_lanes=8)
        assert len(batches) == 1
        assert batches[0].batched and not batches[0].mixed
        assert batches[0].indices == (0, 1, 2)

    def test_max_lanes_chunks(self):
        reqs = [_req(i, seed=i) for i in range(5)]
        batches = plan_lanes(reqs, max_lanes=2)
        assert [b.indices for b in batches] == [(0, 1), (2, 3), (4,)]
        assert [b.batched for b in batches] == [True, True, False]

    def test_max_lanes_one_disables_batching(self):
        reqs = [_req(i, seed=i) for i in range(3)]
        assert all(
            not b.batched and b.n_lanes == 1
            for b in plan_lanes(reqs, max_lanes=1)
        )

    def test_unbatchable_engine_goes_solo(self):
        reqs = [_req(i, seed=i, engine="sequential") for i in range(3)]
        assert all(not b.batched for b in plan_lanes(reqs, max_lanes=8))
        assert "sequential" not in BATCHABLE_ENGINES

    def test_duplicate_seeds_demote_only_the_repeats(self):
        seeds = (0, 1, 0, 2, 1)
        reqs = [_req(i, seed=s) for i, s in enumerate(seeds)]
        batches = plan_lanes(reqs, max_lanes=8)
        assert [b.indices for b in batches] == [(0, 1, 3), (2,), (4,)]
        assert [b.batched for b in batches] == [True, False, False]
        assert _covered(batches) == list(range(5))

    def test_distinct_keys_never_share_a_batch(self):
        reqs = [
            _req(0, seed=0, batch="a"),
            _req(1, seed=1, batch="b"),
            _req(2, seed=1, batch="a"),
        ]
        batches = plan_lanes(reqs, max_lanes=8)
        assert [b.indices for b in batches] == [(0, 2), (1,)]


class TestPaddedPacking:
    def test_mixed_keys_fuse_largest_first(self):
        reqs = [
            _req(0, batch="a", agents=8),
            _req(1, batch="b", agents=16),
            _req(2, batch="c", agents=12),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.5)
        assert len(batches) == 1
        assert batches[0].mixed and batches[0].batched
        assert batches[0].indices == (1, 2, 0)  # largest population first

    def test_waste_bound_splits(self):
        reqs = [
            _req(0, batch="a", agents=100),
            _req(1, batch="b", agents=96),
            _req(2, batch="c", agents=10),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.1)
        assert [b.indices for b in batches] == [(0, 1), (2,)]
        assert batches[0].mixed and not batches[1].batched

    def test_zero_waste_only_fuses_equal_sizes(self):
        reqs = [
            _req(0, batch="a", agents=64),
            _req(1, batch="b", agents=64),
            _req(2, batch="c", agents=32),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.0)
        assert [b.indices for b in batches] == [(0, 1), (2,)]

    def test_same_key_lanes_in_pad_mode_are_not_mixed(self):
        reqs = [_req(i, seed=i, agents=32) for i in range(3)]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.5)
        assert len(batches) == 1
        assert batches[0].batched and not batches[0].mixed

    def test_pools_respect_pad_key(self):
        reqs = [
            _req(0, batch="a", pad="p", agents=32),
            _req(1, batch="b", pad="q", agents=32),
            _req(2, batch="c", pad="p", agents=32),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.5)
        assert [b.indices for b in batches] == [(0, 2), (1,)]

    def test_derived_bound_needs_a_config(self):
        reqs = [
            _req(0, batch="a", agents=32),
            _req(1, batch="b", agents=16),
        ]
        with pytest.raises(ExperimentError):
            plan_lanes(reqs, max_lanes=8, pad_lanes=True)

    def test_derived_bound_from_config(self):
        cfg = _cfg()
        reqs = [
            _req(0, batch="a", agents=32, config=cfg),
            _req(1, batch="b", agents=16, config=_cfg(n_per_side=8)),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True)
        # The tiny config is dispatch-dominated, so the derived ceiling is
        # loose and the two lanes fuse.
        assert len(batches) == 1 and batches[0].mixed

    def test_waste_bound_prices_the_chunk_max_not_its_first_lane(self):
        # A high-priority small lane opens the chunk; admitting a large
        # lane must price padding against the *larger* lane (the real
        # pad target), not the small opener — otherwise the waste
        # fraction goes negative and the ceiling never triggers.
        reqs = [
            _req(0, batch="a", agents=10, priority=1),
            _req(1, batch="b", agents=100),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.3)
        # True waste of fusing is 1 - 110/200 = 45% > 30%: no fusion.
        assert [b.indices for b in batches] == [(0,), (1,)]
        assert all(not b.batched for b in batches)

    def test_high_priority_lanes_anchor_the_first_batch(self):
        # Without priorities, the largest lanes open the first chunk; a
        # high-priority small lane must overtake them so it is never the
        # one squeezed out by the waste bound.
        reqs = [
            _req(0, batch="a", agents=100),
            _req(1, batch="b", agents=96),
            _req(2, batch="c", agents=90, priority=2),
            _req(3, batch="d", agents=10, priority=2),
        ]
        batches = plan_lanes(reqs, max_lanes=2, pad_lanes=True,
                             max_pad_waste=0.5)
        assert batches[0].indices == (2, 3)  # priority pair packs first
        assert batches[1].indices == (0, 1)

    def test_equal_priority_keeps_largest_first_order(self):
        reqs = [
            _req(0, batch="a", agents=8, priority=1),
            _req(1, batch="b", agents=16, priority=1),
            _req(2, batch="c", agents=12, priority=1),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True,
                             max_pad_waste=0.5)
        assert batches[0].indices == (1, 2, 0)

    def test_derived_bound_uses_largest_lane_not_highest_priority(self):
        # The derived ceiling prices the pool's largest scenario even
        # when a smaller, higher-priority lane sorts first.
        reqs = [
            _req(0, batch="a", agents=16, config=None, priority=9),
            _req(1, batch="b", agents=32, config=_cfg(), priority=0),
        ]
        batches = plan_lanes(reqs, max_lanes=8, pad_lanes=True)
        assert _covered(batches) == [0, 1]


class TestDerivedWaste:
    def test_clamped_to_documented_bounds(self):
        w = derived_pad_waste(_cfg(), 8)
        assert MIN_PAD_WASTE <= w <= MAX_PAD_WASTE_CEILING


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            validate_plan_parameters(0, None)
        with pytest.raises(ExperimentError):
            validate_plan_parameters(4, 1.0)
        with pytest.raises(ExperimentError):
            validate_plan_parameters(4, -0.1)
        validate_plan_parameters(4, 0.0)

    def test_every_index_covered_exactly_once(self):
        reqs = [
            _req(i, seed=i % 3, batch="ab"[i % 2], agents=16 + 8 * (i % 4))
            for i in range(12)
        ]
        for kwargs in (
            {"max_lanes": 3},
            {"max_lanes": 3, "pad_lanes": True, "max_pad_waste": 0.3},
            {"max_lanes": 1},
        ):
            assert _covered(plan_lanes(reqs, **kwargs)) == list(range(12))
