"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    ConfigurationError,
    EngineError,
    ExperimentError,
    LaunchConfigError,
    OccupancyError,
    PlacementError,
    ReproError,
    StatsError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            PlacementError,
            EngineError,
            LaunchConfigError,
            OccupancyError,
            StatsError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_are_catchable_as_valueerror(self):
        """Validation errors double as ValueError for ergonomic catching."""
        for exc in (ConfigurationError, PlacementError, LaunchConfigError,
                    OccupancyError, StatsError):
            assert issubclass(exc, ValueError)

    def test_runtime_errors(self):
        for exc in (EngineError, ExperimentError):
            assert issubclass(exc, RuntimeError)

    def test_one_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise StatsError("x")
