"""Distribution transform tests."""

import numpy as np
import pytest

from repro.rng import (
    Stream,
    box_muller,
    categorical,
    categorical_from_cumsum,
    clip_lem_draw,
)


class TestBoxMuller:
    def test_moments(self, rng):
        u = rng.uniform4(Stream.EXPERIMENT, 0, np.arange(100000))
        z = box_muller(u[0], u[1])
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_deterministic(self):
        z1 = box_muller(np.array([0.5]), np.array([0.25]))
        z2 = box_muller(np.array([0.5]), np.array([0.25]))
        assert np.array_equal(z1, z2)


class TestClipLemDraw:
    def test_negative_to_zero(self):
        x = clip_lem_draw(np.array([-10.0]), mu=0.0, sigma=1.0, c_max=1.0)
        assert x[0] == 0.0

    def test_above_cmax_clipped(self):
        x = clip_lem_draw(np.array([10.0]), mu=0.0, sigma=1.0, c_max=1.0)
        assert x[0] == 1.0

    def test_interior_untouched(self):
        x = clip_lem_draw(np.array([0.5]), mu=0.0, sigma=1.0, c_max=1.0)
        assert x[0] == 0.5

    def test_mu_sigma_applied(self):
        x = clip_lem_draw(np.array([2.0]), mu=0.1, sigma=0.2, c_max=1.0)
        assert x[0] == pytest.approx(0.5)

    def test_per_lane_cmax(self):
        x = clip_lem_draw(
            np.array([5.0, 5.0]), mu=0.0, sigma=1.0, c_max=np.array([1.0, 0.5])
        )
        assert np.array_equal(x, [1.0, 0.5])


class TestCategorical:
    def test_zero_weights_return_minus_one(self):
        idx = categorical(np.zeros((3, 8)), np.full(3, 0.5))
        assert np.array_equal(idx, [-1, -1, -1])

    def test_single_candidate_always_chosen(self):
        w = np.zeros((4, 8))
        w[:, 5] = 2.0
        idx = categorical(w, np.array([0.01, 0.3, 0.7, 0.999]))
        assert np.array_equal(idx, [5, 5, 5, 5])

    def test_zero_weight_never_chosen(self, rng):
        w = np.zeros((1000, 4))
        w[:, 1] = 1.0
        w[:, 3] = 1.0
        u = rng.uniform(Stream.EXPERIMENT, 0, np.arange(1000))
        idx = categorical(np.tile(w[0], (1000, 1)), u)
        assert set(np.unique(idx)) <= {1, 3}

    def test_proportions(self, rng):
        w = np.tile(np.array([1.0, 3.0]), (200000, 1))
        u = rng.uniform(Stream.EXPERIMENT, 1, np.arange(200000))
        idx = categorical(w, u)
        frac = np.mean(idx == 1)
        assert abs(frac - 0.75) < 0.005

    def test_cumsum_variant_matches(self, rng):
        w = np.abs(rng.normal12(Stream.EXPERIMENT, 2, np.arange(800))).reshape(100, 8)
        u = rng.uniform(Stream.EXPERIMENT, 3, np.arange(100))
        assert np.array_equal(
            categorical(w, u), categorical_from_cumsum(np.cumsum(w, axis=1), u)
        )

    def test_threshold_rounding_guarantees_hit(self):
        """Even u -> 1 must select a positive-weight slot."""
        w = np.array([[0.0, 1e-300, 0.0, 1e-300]])
        idx = categorical(w, np.array([1.0 - 1e-16]))
        assert idx[0] in (1, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            categorical(np.zeros(8), np.array([0.5]))
