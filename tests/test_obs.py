"""Unit tests for the observability layer (`repro.obs`).

Spans and tracer semantics (nesting, torn-span closing, wire form),
the metrics primitives (counter/gauge/histogram, registry, Prometheus
rendering, thread safety) and the span→histogram recorder.
"""

import pickle
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    PHASES,
    ROOT_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanRecorder,
    Tracer,
    TraceSpec,
    mint_span_id,
    mint_trace_id,
    percentile,
    render_trace,
    sort_spans,
    span_dict,
)


class TestIds:
    def test_trace_id_is_32_hex(self):
        tid = mint_trace_id()
        assert len(tid) == 32
        int(tid, 16)

    def test_span_id_is_16_hex(self):
        sid = mint_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({mint_trace_id() for _ in range(64)}) == 64


class TestSpan:
    def test_wire_roundtrip(self):
        span = Span(
            name="engine.run",
            trace_id="t" * 32,
            span_id="s" * 16,
            parent_id="p" * 16,
            start_unix=12.5,
            duration_s=0.25,
            attrs={"steps": 40},
        )
        back = Span.from_dict(span.to_dict())
        assert back == span

    def test_wire_form_excludes_internal_clock(self):
        span = Span(name="x", trace_id="t", span_id="s", _t0=123.0)
        assert "_t0" not in span.to_dict()

    def test_wire_form_pickles(self):
        # Spans ride LaunchOutcome across the forkserver boundary as
        # plain dicts; they must pickle without custom machinery.
        wire = span_dict("dispatch", start_unix=1.0, duration_s=0.1)
        assert pickle.loads(pickle.dumps(wire)) == wire


class TestTraceSpec:
    def test_roundtrip_and_pickle(self):
        spec = TraceSpec(dispatched_unix=42.0)
        assert TraceSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestTracer:
    def test_nesting_follows_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = next(s for s in tracer.spans if s.name == "outer")
        inner = next(s for s in tracer.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.trace_id == outer.trace_id == tracer.trace_id

    def test_context_manager_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("kapow")
        (span,) = tracer.spans
        assert span.status == "error"
        assert "kapow" in span.error
        assert span.duration_s is not None

    def test_finishing_outer_closes_torn_children(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("torn")  # never finished explicitly
        tracer.finish(outer, status="error", error="boom")
        torn = next(s for s in tracer.spans if s.name == "torn")
        assert torn.status == "error"
        assert torn.duration_s is not None

    def test_close_open_seals_a_torn_trace(self):
        tracer = Tracer()
        tracer.start("a")
        tracer.start("b")
        tracer.close_open(error="worker died")
        assert {s.name for s in tracer.spans} == {"a", "b"}
        assert all(s.status == "error" for s in tracer.spans)
        assert all(s.duration_s is not None for s in tracer.spans)

    def test_add_records_retroactive_bounds(self):
        tracer = Tracer()
        span = tracer.add("queue_wait", start_unix=5.0, duration_s=0.75, n=3)
        assert span.duration_s == 0.75
        assert span.attrs == {"n": 3}

    def test_add_clamps_negative_durations(self):
        tracer = Tracer()
        assert tracer.add("x", start_unix=0.0, duration_s=-1.0).duration_s == 0.0

    def test_add_parents_under_the_open_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            added = tracer.add("dispatch", start_unix=0.0, duration_s=0.1)
        assert added.parent_id == root.span_id

    def test_adopt_rewrites_trace_and_grafts_parents(self):
        worker = Tracer()
        with worker.span("engine.run"):
            with worker.span("kernel"):
                pass
        local = Tracer()
        with local.span("root") as root:
            local.adopt(worker.wire())
        spans = {s.name: s for s in local.spans}
        # External root re-parented onto ours; internal nesting kept.
        assert spans["engine.run"].parent_id == root.span_id
        assert spans["kernel"].parent_id == spans["engine.run"].span_id
        assert all(s.trace_id == local.trace_id for s in local.spans)

    def test_wire_returns_plain_dicts(self):
        tracer = Tracer()
        with tracer.span("a", k=1):
            pass
        (wire,) = tracer.wire()
        assert wire["name"] == "a"
        assert wire["attrs"] == {"k": 1}
        assert wire["status"] == "ok"


class TestSpanDict:
    def test_blank_trace_for_later_grafting(self):
        wire = span_dict("plan", start_unix=1.0, duration_s=0.2, jobs=4)
        assert wire["trace_id"] == ""
        assert wire["parent_id"] is None
        assert wire["attrs"] == {"jobs": 4}
        assert len(wire["span_id"]) == 16


class TestRenderTrace:
    def _spans(self):
        root = span_dict("job", start_unix=0.0, duration_s=1.0)
        child_a = span_dict("queue_wait", start_unix=0.0, duration_s=0.25)
        child_b = span_dict("engine.run", start_unix=0.3, duration_s=0.5)
        child_a["parent_id"] = root["span_id"]
        child_b["parent_id"] = root["span_id"]
        return [root, child_a, child_b]

    def test_tree_shape_and_percentages(self):
        text = render_trace(self._spans(), title="job job-1")
        lines = text.splitlines()
        assert lines[0] == "job job-1"
        assert "├─ queue_wait" in text
        assert "└─ engine.run" in text
        assert "100.0%" in text and " 25.0%" in text and " 50.0%" in text

    def test_error_marker_carries_message(self):
        spans = self._spans()
        spans[2]["status"] = "error"
        spans[2]["error"] = "ValueError: kapow"
        text = render_trace(spans)
        assert "[ERROR]" in text
        assert "kapow" in text

    def test_orphans_promote_to_roots(self):
        orphan = span_dict("dispatch", start_unix=0.0, duration_s=0.1)
        orphan["parent_id"] = "f" * 16  # parent not in the set
        assert "dispatch" in render_trace([orphan])

    def test_empty_trace(self):
        assert render_trace([]) == "(no spans recorded)"

    def test_sort_spans_orders_by_start(self):
        a = span_dict("late", start_unix=2.0, duration_s=0.1)
        b = span_dict("early", start_unix=1.0, duration_s=0.1)
        assert [s["name"] for s in sort_spans([a, b])] == ["early", "late"]


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_set_total_never_lowers(self):
        # Mirrored externally-tracked totals must stay monotonic even
        # if the mirror is refreshed from a stale snapshot.
        c = Counter()
        c.set_total(10)
        c.set_total(7)
        assert c.value == 10


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge()
        g.set(3.0)
        g.inc(-1.0)
        assert g.value == 2.0


class TestHistogram:
    def test_counts_land_in_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        counts, total, n = h.snapshot()
        assert tuple(counts) == (1, 1, 1)  # <=1, <=2, overflow
        assert n == 3
        assert total == pytest.approx(101.0)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_quantile_empty_is_none(self):
        assert Histogram(buckets=(1.0,)).quantile(0.5) is None

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestPercentile:
    def test_exact_percentiles(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_empty_is_none(self):
        assert percentile([], 0.5) is None


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total", "X.") is reg.counter(
            "repro_x_total", "X."
        )

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_y_total", "Y.", phase="a")
        b = reg.counter("repro_y_total", "Y.", phase="b")
        assert a is not b
        a.inc(2)
        series = dict(
            (labels.get("phase"), c.value)
            for labels, c in reg.series("repro_y_total")
        )
        assert series == {"a": 2, "b": 0}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_z_total", "Z.")
        with pytest.raises(ValueError):
            reg.gauge("repro_z_total", "Z.")

    def test_render_is_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs.").inc(3)
        reg.gauge("repro_depth", "Depth.").set(2)
        h = reg.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render()
        assert "# HELP repro_jobs_total Jobs." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        # Buckets are cumulative and end at +Inf == _count.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        assert "repro_lat_seconds_sum 5.05" in text

    def test_help_and_type_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("repro_multi_total", "M.", phase="a").inc()
        reg.counter("repro_multi_total", "M.", phase="b").inc()
        text = reg.render()
        assert text.count("# HELP repro_multi_total") == 1
        assert text.count("# TYPE repro_multi_total") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_esc_total", "E.", where='we"ird\\x\n').inc()
        text = reg.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_thread_safety_exact_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_threads_total", "T.")
        h = reg.histogram("repro_threads_seconds", "T.", buckets=(0.5,))
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread
        assert h.count == n_threads * per_thread


class TestSpanRecorder:
    def _trace(self, e2e=0.5, run=0.4, status="ok"):
        root = span_dict(ROOT_SPAN, start_unix=0.0, duration_s=e2e)
        child = span_dict(
            "engine.run", start_unix=0.0, duration_s=run, status=status
        )
        child["parent_id"] = root["span_id"]
        return (root, child)

    def test_roots_feed_end_to_end_histogram(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(reg)
        rec.observe_trace(self._trace())
        rec.observe_trace(self._trace(e2e=1.5))
        summary = rec.summary()
        assert summary["end_to_end"]["count"] == 2
        assert summary["end_to_end"]["p50"] > 0
        assert summary["phases"]["engine.run"]["count"] == 2

    def test_empty_summary_has_no_end_to_end(self):
        rec = SpanRecorder(MetricsRegistry())
        assert rec.summary()["end_to_end"] is None
        assert rec.summary()["phases"] == {}

    def test_error_spans_counted(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(reg)
        rec.observe_trace(self._trace(status="error"))
        series = dict(
            (labels.get("phase"), c.value)
            for labels, c in reg.series("repro_span_errors_total")
        )
        assert series.get("engine.run") == 1

    def test_phase_names_match_canonical_tuple(self):
        # Docs and the bench report key off PHASES; pin the contract.
        assert PHASES == (
            "queue_wait",
            "plan",
            "dispatch",
            "warm_backend",
            "engine.run",
            "to_host",
            "commit",
        )
