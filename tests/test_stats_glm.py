"""Binomial GLM tests: parameter recovery, inference, edge cases."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats import BinomialGLM, ProbitLink, add_intercept


def simulate_logistic(n=400, beta=(-0.5, 1.2), trials=40, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    eta = beta[0] + beta[1] * x
    p = 1.0 / (1.0 + np.exp(-eta))
    y = rng.binomial(trials, p).astype(float)
    return add_intercept(x), y, np.full(n, float(trials))


class TestFit:
    def test_parameter_recovery(self):
        design, y, m = simulate_logistic()
        res = BinomialGLM().fit(design, y, m)
        assert res.converged
        assert res.coef[0] == pytest.approx(-0.5, abs=0.08)
        assert res.coef[1] == pytest.approx(1.2, abs=0.08)

    def test_null_model_intercept_is_logit_of_pooled_rate(self):
        rng = np.random.default_rng(1)
        y = rng.binomial(20, 0.3, size=100).astype(float)
        m = np.full(100, 20.0)
        res = BinomialGLM().fit(np.ones((100, 1)), y, m)
        pooled = y.sum() / m.sum()
        assert res.coef[0] == pytest.approx(np.log(pooled / (1 - pooled)), abs=1e-6)

    def test_separation_free_signal_is_significant(self):
        design, y, m = simulate_logistic(beta=(-0.5, 2.0))
        res = BinomialGLM().fit(design, y, m)
        t, p = res.test_coefficient(1)
        assert p < 1e-6

    def test_null_effect_not_significant(self):
        """A covariate with no effect should usually yield p > 0.05."""
        design, y, m = simulate_logistic(beta=(0.2, 0.0), seed=3)
        res = BinomialGLM().fit(design, y, m)
        _, p = res.test_coefficient(1)
        assert p > 0.05

    def test_deviance_improves_over_null(self):
        design, y, m = simulate_logistic()
        res = BinomialGLM().fit(design, y, m)
        assert res.deviance < res.null_deviance

    def test_probit_link(self):
        design, y, m = simulate_logistic()
        res = BinomialGLM(link=ProbitLink()).fit(design, y, m)
        assert res.converged
        # Probit coefficients are roughly logit / 1.6.
        assert res.coef[1] == pytest.approx(1.2 / 1.6, abs=0.15)

    def test_boundary_counts_handled(self):
        """All-success and all-failure observations must not blow up."""
        design = add_intercept(np.array([-2.0, -1.0, 0.0, 1.0, 2.0] * 10))
        m = np.full(50, 10.0)
        y = np.where(design[:, 1] > 0, 10.0, 0.0)
        y[::7] = 5.0
        res = BinomialGLM().fit(design, y, m)
        assert np.all(np.isfinite(res.coef))


class TestNamesAndSummary:
    def test_coef_table_contains_names(self):
        design, y, m = simulate_logistic(n=100)
        res = BinomialGLM().fit(design, y, m, names=["intercept", "slope"])
        table = res.coef_table()
        assert "intercept" in table and "slope" in table

    def test_test_coefficient_by_name(self):
        design, y, m = simulate_logistic(n=100)
        res = BinomialGLM().fit(design, y, m, names=["intercept", "slope"])
        assert res.test_coefficient("slope") == res.test_coefficient(1)

    def test_name_count_checked(self):
        design, y, m = simulate_logistic(n=100)
        with pytest.raises(StatsError):
            BinomialGLM().fit(design, y, m, names=["only-one"])


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(StatsError):
            BinomialGLM().fit(np.ones((10, 2)), np.ones(9), np.full(10, 5.0))

    def test_successes_exceed_trials(self):
        with pytest.raises(StatsError):
            BinomialGLM().fit(np.ones((5, 1)), np.full(5, 6.0), np.full(5, 5.0))

    def test_zero_trials(self):
        with pytest.raises(StatsError):
            BinomialGLM().fit(np.ones((5, 1)), np.zeros(5), np.zeros(5))

    def test_underdetermined(self):
        with pytest.raises(StatsError):
            BinomialGLM().fit(np.ones((2, 3)), np.ones(2), np.full(2, 5.0))

    def test_add_intercept_shapes(self):
        assert add_intercept(np.zeros(5)).shape == (5, 2)
        assert add_intercept(np.zeros((5, 2))).shape == (5, 3)
        with pytest.raises(StatsError):
            add_intercept(np.zeros((2, 2, 2)))
