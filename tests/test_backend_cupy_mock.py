"""CuPy backend exercised GPU-less through a mock array-module pair.

The mock ``cupy`` delegates every namespace call to NumPy (plus the
``asnumpy``/``asarray`` transfer surface) and the mock ``cupyx`` provides
``scatter_add``; injected through :class:`CupyBackend`'s constructor hooks
and registered as the ``"cupy"`` factory, it drives the *entire* dispatch
plumbing — engine construction, device "transfers", scatter-adds,
recording round-trips, the sequential-engine guard — without a GPU, and
checks the trajectories stay bit-identical to the NumPy backend.

Known limitation: because the mock's arrays *are* ``np.ndarray``, a
kernel that regresses to module-level ``numpy`` instead of ``xp`` still
passes here (real CuPy would raise on the implicit conversion). Routing
completeness is instead covered by code review plus the golden-digest
parity suite; only a wrapper-array mock or real-GPU CI leg (ROADMAP
follow-up) could catch bypasses mechanically.
"""

import numpy as np
import pytest

import repro.backend.core as backend_core
from repro import SimulationConfig, build_engine, run_batched
from repro.backend import CupyBackend, register_backend, resolve_backend
from repro.errors import EngineError
from repro.experiments.sweep import SweepRunner, sweep_grid


class _FakeCupy:
    """Mock ``cupy`` module: NumPy namespace + the transfer surface."""

    asnumpy = staticmethod(np.asarray)
    asarray = staticmethod(np.asarray)

    def __getattr__(self, name):
        return getattr(np, name)


class _FakeCupyx:
    """Mock ``cupyx`` module: the unbuffered scatter-add."""

    scatter_add = staticmethod(np.add.at)


@pytest.fixture
def mock_cupy_backend():
    """Register a mocked CuPy backend as "cupy"; restore the registry after."""
    factories = dict(backend_core._FACTORIES)
    instances = dict(backend_core._INSTANCES)
    backend = CupyBackend(cupy_module=_FakeCupy(), cupyx_module=_FakeCupyx())
    register_backend("cupy", lambda: backend, replace=True)
    yield backend
    backend_core._FACTORIES.clear()
    backend_core._FACTORIES.update(factories)
    backend_core._INSTANCES.clear()
    backend_core._INSTANCES.update(instances)


def _config(model: str, seed: int = 0) -> SimulationConfig:
    return SimulationConfig(
        height=32, width=32, n_per_side=40, steps=30, seed=seed
    ).with_model(model)


class TestMockBackendSurface:
    def test_resolves_through_registry(self, mock_cupy_backend):
        assert resolve_backend("cupy") is mock_cupy_backend
        caps = mock_cupy_backend.capabilities
        assert caps.name == "cupy"
        assert caps.device == "cuda"
        assert caps.is_gpu
        assert not caps.native_scatter_add

    def test_transfer_and_scatter_ops(self, mock_cupy_backend):
        arr = mock_cupy_backend.from_host(np.arange(4))
        assert mock_cupy_backend.to_host(arr).tolist() == [0, 1, 2, 3]
        out = np.zeros(3)
        mock_cupy_backend.scatter_add(out, np.array([1, 1]), 2.0)
        assert out.tolist() == [0.0, 4.0, 0.0]

    def test_synchronize_without_cuda_module_is_noop(self, mock_cupy_backend):
        mock_cupy_backend.synchronize()


class TestMockBackendEngines:
    @pytest.mark.parametrize("model", ["lem", "aco"])
    @pytest.mark.parametrize("engine", ["vectorized", "tiled"])
    def test_engines_bit_identical_to_numpy(self, mock_cupy_backend, model, engine):
        cfg = _config(model)
        via_mock = build_engine(cfg, engine=engine, backend="cupy")
        via_numpy = build_engine(cfg, engine=engine, backend="numpy")
        r_mock = via_mock.run(record_timeline=True)
        r_numpy = via_numpy.run(record_timeline=True)
        assert r_mock.throughput_total == r_numpy.throughput_total
        np.testing.assert_array_equal(r_mock.moved_per_step, r_numpy.moved_per_step)
        assert via_mock.backend is mock_cupy_backend
        # Full end-state comparison through host copies.
        np.testing.assert_array_equal(
            via_mock.backend.to_host(via_mock.env.mat),
            via_numpy.backend.to_host(via_numpy.env.mat),
        )
        np.testing.assert_array_equal(
            via_mock.backend.to_host(via_mock.pop.tour),
            via_numpy.backend.to_host(via_numpy.pop.tour),
        )

    def test_batched_engine_runs_on_mock_device(self, mock_cupy_backend):
        seeds = (0, 1, 2)
        cfg = _config("aco").replace(backend="cupy")
        out = run_batched(cfg, seeds, record_timeline=True)
        reference = run_batched(
            cfg.replace(backend="numpy"), seeds, record_timeline=True
        )
        for got, want in zip(out.results, reference.results):
            assert got.throughput_total == want.throughput_total
            np.testing.assert_array_equal(got.moved_per_step, want.moved_per_step)

    def test_padded_heterogeneous_batch_on_mock_device(self, mock_cupy_backend):
        configs = [
            _config("lem", 0).replace(backend="cupy"),
            _config("lem", 1).replace(n_per_side=24, height=24, width=24,
                                      backend="cupy"),
        ]
        out = run_batched(configs, (0, 1), record_timeline=False)
        solo = [
            build_engine(c.replace(backend="numpy"), seed=s).run(
                record_timeline=False
            )
            for c, s in zip(configs, (0, 1))
        ]
        assert [r.throughput_total for r in out.results] == [
            r.throughput_total for r in solo
        ]

    def test_sequential_engine_refuses_device_backends(self, mock_cupy_backend):
        with pytest.raises(EngineError, match="host-only"):
            build_engine(_config("lem"), engine="sequential", backend="cupy")

    def test_sweep_runner_threads_backend_to_lanes(self, mock_cupy_backend):
        points = sweep_grid((1, 2), seeds=(0, 1), models=("lem",), scale="tiny")
        records = SweepRunner(max_lanes=4, backend="cupy").run(points)
        reference = SweepRunner(max_lanes=4, backend="numpy").run(points)
        assert [r.throughput for r in records] == [r.throughput for r in reference]


# ---------------------------------------------------------------------------
# Pinned-memory / stream-overlapped transfer path (to_host_many)
# ---------------------------------------------------------------------------


class _FakeStream:
    """Mock ``cupy.cuda.Stream``: records construction and the final fence."""

    created: list = []

    def __init__(self, non_blocking=False):
        self.non_blocking = non_blocking
        self.sync_count = 0
        _FakeStream.created.append(self)

    def synchronize(self):
        self.sync_count += 1


class _FakeDeviceArray:
    """Minimal device-array stand-in exposing CuPy's ``get`` surface."""

    def __init__(self, arr):
        self._arr = np.asarray(arr)
        self.shape = self._arr.shape
        self.dtype = self._arr.dtype
        self.got_on_stream = None

    def get(self, stream=None, out=None):
        self.got_on_stream = stream
        out[...] = self._arr
        return out


class _FakeCuda:
    Stream = _FakeStream


class _FakeCupyStreams(_FakeCupy):
    """Mock ``cupy`` whose runtime exposes the CUDA stream surface."""

    cuda = _FakeCuda()


class _FakeCupyxPinned(_FakeCupyx):
    """Mock ``cupyx`` with pinned host allocation."""

    empty_pinned = staticmethod(np.empty)


class TestPinnedStreamTransfers:
    @pytest.fixture()
    def stream_backend(self):
        _FakeStream.created.clear()
        return CupyBackend(
            cupy_module=_FakeCupyStreams(), cupyx_module=_FakeCupyxPinned()
        )

    def test_capabilities_reflect_probed_support(self, stream_backend):
        caps = stream_backend.capabilities
        assert caps.pinned_memory
        assert caps.supports_streams
        # The plain mock (no cuda submodule, no empty_pinned) degrades.
        plain = CupyBackend(cupy_module=_FakeCupy(), cupyx_module=_FakeCupyx())
        assert not plain.capabilities.pinned_memory
        assert not plain.capabilities.supports_streams

    def test_to_host_many_overlaps_on_one_stream(self, stream_backend):
        arrs = [
            _FakeDeviceArray(np.arange(6).reshape(2, 3)),
            _FakeDeviceArray(np.ones(4, dtype=np.int64)),
        ]
        outs = stream_backend.to_host_many(arrs)
        np.testing.assert_array_equal(outs[0], np.arange(6).reshape(2, 3))
        np.testing.assert_array_equal(outs[1], np.ones(4, dtype=np.int64))
        assert outs[0].dtype == arrs[0].dtype
        # Exactly one non-blocking side stream, every copy queued on it,
        # one fence at the end covering the whole batch.
        assert len(_FakeStream.created) == 1
        stream = _FakeStream.created[0]
        assert stream.non_blocking
        assert stream.sync_count == 1
        assert all(a.got_on_stream is stream for a in arrs)

    def test_to_host_many_falls_back_without_stream_support(self):
        plain = CupyBackend(cupy_module=_FakeCupy(), cupyx_module=_FakeCupyx())
        arrs = [np.arange(3), np.arange(5)]
        outs = plain.to_host_many(arrs)
        for got, want in zip(outs, arrs):
            np.testing.assert_array_equal(got, want)

    def test_empty_batch(self, stream_backend):
        assert stream_backend.to_host_many([]) == []
        assert len(_FakeStream.created) == 0
