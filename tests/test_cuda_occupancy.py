"""CC 2.0 occupancy calculator tests."""

import pytest

from repro.cuda import occupancy
from repro.errors import OccupancyError


class TestPaperClaims:
    def test_256_threads_is_full_occupancy(self):
        """Section IV.a: 256-thread blocks maintain 100% occupancy."""
        occ = occupancy(256, registers_per_thread=20, shared_per_block=4096)
        assert occ.is_full
        assert occ.active_blocks_per_sm == 6
        assert occ.active_warps_per_sm == 48

    def test_more_than_256_threads_breaks_full(self):
        """The paper's statement: 256 is the max for 100% with 8-block SMs.

        At 512 threads/block only 3 blocks fit (1536/512) = 48 warps — that
        is still 100%; the paper's 256 figure comes from wanting small
        square tiles. But below 192 threads the 8-block cap kicks in.
        """
        occ = occupancy(128, registers_per_thread=16)
        assert occ.active_blocks_per_sm == 8  # block-limited
        assert occ.occupancy < 1.0
        assert occ.limiter == "blocks"


class TestLimiters:
    def test_register_limited(self):
        occ = occupancy(256, registers_per_thread=40)
        assert occ.limiter == "registers"
        assert occ.occupancy < 1.0

    def test_shared_limited(self):
        occ = occupancy(256, registers_per_thread=16, shared_per_block=20000)
        assert occ.limiter == "shared"
        assert occ.active_blocks_per_sm == 2

    def test_warp_limited_full_block(self):
        occ = occupancy(1024, registers_per_thread=16)
        assert occ.active_blocks_per_sm == 1
        assert occ.occupancy == pytest.approx(32 / 48)

    def test_zero_shared_means_block_limit(self):
        occ = occupancy(192, registers_per_thread=0, shared_per_block=0)
        assert occ.active_blocks_per_sm == 8
        assert occ.occupancy == 1.0


class TestGranularities:
    def test_register_allocation_rounds_per_warp(self):
        """21 regs/thread: 21*32=672 -> 704 per warp; 6 blocks no longer fit."""
        occ21 = occupancy(256, registers_per_thread=21)
        occ20 = occupancy(256, registers_per_thread=20)
        assert occ20.active_blocks_per_sm == 6
        assert occ21.active_blocks_per_sm == 5

    def test_shared_allocation_rounds(self):
        # 49152 / 8193 -> 5 blocks after rounding to 128-byte units.
        occ = occupancy(64, registers_per_thread=8, shared_per_block=8193)
        assert occ.active_blocks_per_sm <= 5


class TestValidation:
    def test_thread_bounds(self):
        with pytest.raises(OccupancyError):
            occupancy(0)
        with pytest.raises(OccupancyError):
            occupancy(2048)

    def test_negative_registers(self):
        with pytest.raises(OccupancyError):
            occupancy(256, registers_per_thread=-1)

    def test_impossible_block(self):
        with pytest.raises(OccupancyError, match="cannot launch"):
            occupancy(1024, registers_per_thread=64)

    def test_shared_bounds(self):
        with pytest.raises(OccupancyError):
            occupancy(256, shared_per_block=50000)
