"""Metrics package tests."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.metrics import (
    FlowRecorder,
    GridlockDetector,
    ThroughputTracker,
    band_segregation,
    detour_factor,
    efficiency_report,
    is_gridlocked,
    lane_order_parameter,
    midline_flux,
    row_density_profile,
)
from repro.types import Group


@pytest.fixture
def finished_engine(small_config):
    eng = build_engine(small_config, "vectorized")
    tracker = ThroughputTracker()
    eng.run(steps=60, callback=tracker)
    return eng, tracker


class TestThroughputTracker:
    def test_cumulative_matches_engine(self, finished_engine):
        eng, tracker = finished_engine
        assert int(tracker.cumulative[-1]) == eng.throughput()

    def test_summary_fields(self, finished_engine):
        eng, tracker = finished_engine
        s = tracker.summary()
        assert s.crossed_total == eng.throughput()
        assert s.crossed_total == s.crossed_top + s.crossed_bottom
        assert s.steps == 60
        assert 0.0 <= s.fraction <= 1.0

    def test_half_crossing_step(self, finished_engine):
        _, tracker = finished_engine
        s = tracker.summary()
        if s.crossed_total > 0:
            assert 0 <= s.half_crossing_step <= s.steps

    def test_unused_tracker_raises(self):
        with pytest.raises(RuntimeError):
            ThroughputTracker().summary()


class TestLanes:
    def test_fully_segregated_is_one(self):
        mat = np.zeros((10, 10), dtype=np.int8)
        mat[:, :5] = int(Group.TOP)
        mat[:, 5:] = int(Group.BOTTOM)
        assert lane_order_parameter(mat) == 1.0

    def test_fully_mixed_is_low(self):
        mat = np.zeros((10, 10), dtype=np.int8)
        mat[::2] = int(Group.TOP)
        mat[1::2] = int(Group.BOTTOM)
        assert lane_order_parameter(mat) == 0.0

    def test_empty_grid_is_zero(self):
        assert lane_order_parameter(np.zeros((5, 5))) == 0.0

    def test_band_segregation_shape(self, finished_engine):
        eng, _ = finished_engine
        bands = band_segregation(eng, n_bands=4)
        assert bands.shape == (4,)
        assert np.all((bands >= 0) & (bands <= 1))

    def test_band_validation(self, finished_engine):
        eng, _ = finished_engine
        with pytest.raises(ValueError):
            band_segregation(eng, n_bands=0)


class TestFlow:
    def test_density_profile_sums_to_population(self, finished_engine):
        eng, _ = finished_engine
        profile = row_density_profile(eng)
        total = sum(p.sum() * eng.env.width for p in profile.values())
        assert total == pytest.approx(eng.pop.n_agents)

    def test_midline_flux_counts_productive_crossings(self):
        ids = np.array([0, 1, 2], dtype=np.int8)  # sentinel + one per group
        before = np.array([0, 4, 5])
        after = np.array([0, 5, 4])  # top crosses down, bottom crosses up
        assert midline_flux(before, after, ids, midline=5) == 2

    def test_midline_flux_counter_crossings_negative(self):
        ids = np.array([0, 1], dtype=np.int8)
        before = np.array([0, 5])
        after = np.array([0, 4])  # top agent moves backwards over midline
        assert midline_flux(before, after, ids, midline=5) == -1

    def test_flow_recorder(self, small_config):
        eng = build_engine(small_config, "vectorized")
        rec = FlowRecorder()
        eng.run(steps=30, callback=rec)
        assert len(rec.move_rate) == 30
        assert 0.0 <= rec.mean_move_rate <= 1.0
        assert len(rec.flux) == 29


class TestGridlock:
    def test_free_flow_not_gridlocked(self, finished_engine):
        eng, tracker = finished_engine
        moved = np.array([50] * 100)
        assert not is_gridlocked(moved, n_agents=100)

    def test_frozen_detected(self):
        moved = np.array([0] * 100)
        assert is_gridlocked(moved, n_agents=100, window=50)

    def test_short_history_not_gridlocked(self):
        assert not is_gridlocked(np.zeros(10), n_agents=100, window=50)

    def test_detector_latches_onset(self, small_config):
        eng = build_engine(small_config, "vectorized")
        det = GridlockDetector(rate_threshold=2.0, window=5)  # everything is "quiet"
        eng.run(steps=10, callback=det)
        assert det.gridlocked
        assert det.onset_step == 0

    def test_detector_no_false_positive(self, small_config):
        eng = build_engine(small_config, "vectorized")
        det = GridlockDetector(rate_threshold=0.0, window=5)
        eng.run(steps=10, callback=det)
        assert not det.gridlocked


class TestEfficiency:
    def test_detour_factor_lone_agent_is_unity(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=1, steps=30, seed=0)
        eng = build_engine(cfg, "vectorized")
        eng.run()
        assert eng.throughput() == 2
        assert detour_factor(eng) == pytest.approx(1.0, rel=0.05)

    def test_report_fields(self, finished_engine):
        eng, _ = finished_engine
        rep = efficiency_report(eng)
        assert 0.0 <= rep.crossed_fraction <= 1.0
        if rep.crossed_fraction > 0:
            assert rep.detour_factor >= 0.9

    def test_no_crossings_gives_nan(self, tiny_config):
        eng = build_engine(tiny_config, "vectorized")
        assert np.isnan(detour_factor(eng))
