"""Tile decomposition and halo-load mapping tests (Figures 2/3)."""

import numpy as np
import pytest

from repro.cuda import (
    OUT_OF_GRID,
    TileDecomposition,
    halo_pass_count,
    halo_perimeter,
    halo_warp_schedule,
)
from repro.errors import LaunchConfigError


class TestDecomposition:
    def test_paper_grid(self):
        dec = TileDecomposition(480, 480)
        assert dec.n_tiles == 900
        assert dec.blocks_x == dec.blocks_y == 30

    def test_requires_multiples(self):
        with pytest.raises(LaunchConfigError):
            TileDecomposition(100, 480)

    def test_iteration_covers_grid(self):
        dec = TileDecomposition(32, 48)
        covered = np.zeros((32, 48), dtype=int)
        for tile in dec:
            covered[tile.interior] += 1
        assert np.all(covered == 1)

    def test_tile_lookup_bounds(self):
        dec = TileDecomposition(32, 32)
        with pytest.raises(IndexError):
            dec.tile(2, 0)


class TestSharedLoad:
    def test_interior_tile_has_full_halo(self):
        dec = TileDecomposition(48, 48)
        arr = np.arange(48 * 48, dtype=np.int32).reshape(48, 48)
        tile = dec.tile(1, 1)
        shared = tile.load_shared(arr, fill=OUT_OF_GRID)
        assert shared.shape == (18, 18)
        assert np.array_equal(shared[1:-1, 1:-1], arr[tile.interior])
        # Halo ring equals the surrounding global cells.
        assert np.array_equal(shared[0, 1:-1], arr[15, 16:32])
        assert np.array_equal(shared[1:-1, 0], arr[16:32, 15])

    def test_corner_tile_gets_fill(self):
        dec = TileDecomposition(32, 32)
        arr = np.ones((32, 32), dtype=np.int8)
        shared = dec.tile(0, 0).load_shared(arr, fill=OUT_OF_GRID)
        assert np.all(shared[0, :] == OUT_OF_GRID)
        assert np.all(shared[:, 0] == OUT_OF_GRID)
        assert np.all(shared[1:-1, 1:-1] == 1)

    def test_fill_preserves_dtype(self):
        dec = TileDecomposition(16, 16)
        arr = np.zeros((16, 16), dtype=np.float64)
        shared = dec.tile(0, 0).load_shared(arr, fill=0.5)
        assert shared.dtype == np.float64
        assert shared[0, 0] == 0.5


class TestHaloMapping:
    def test_perimeter_size(self):
        """2*18 + 2*16 = 68 halo cells for the paper's 16-cell tiles."""
        assert len(halo_perimeter(16)) == 68

    def test_perimeter_unique_and_on_border(self):
        cells = halo_perimeter(16)
        assert len(set(cells)) == 68
        for r, c in cells:
            assert r in (0, 17) or c in (0, 17)

    def test_three_passes(self):
        """ceil(68 / 32) = 3 warp passes (Figure 3's index mapping)."""
        assert halo_pass_count(16) == 3

    def test_schedule_covers_everything_once(self):
        schedule = halo_warp_schedule(16)
        assert len(schedule) == 68
        assert len({a.shared_pos for a in schedule}) == 68

    def test_lane_mapping(self):
        """Element h is loaded by lane h % 32 in pass h // 32."""
        schedule = halo_warp_schedule(16)
        for h, a in enumerate(schedule):
            assert a.lane == h % 32
            assert a.pass_index == h // 32

    def test_only_final_pass_has_idle_lanes(self):
        schedule = halo_warp_schedule(16)
        by_pass = {}
        for a in schedule:
            by_pass.setdefault(a.pass_index, set()).add(a.lane)
        assert by_pass[0] == set(range(32))
        assert by_pass[1] == set(range(32))
        assert len(by_pass[2]) == 68 - 64
