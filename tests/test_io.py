"""I/O tests: text tables, JSON records, plots, rendering."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.io import (
    bar_chart,
    line_plot,
    read_json_record,
    read_text_table,
    render_density,
    render_engine,
    render_grid,
    write_json_record,
    write_text_table,
)


class TestTextTables:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "out" / "data.txt")
        cols = {
            "step": np.arange(5),
            "value": np.linspace(0.0, 1.0, 5),
        }
        write_text_table(path, cols, header_comment="demo table")
        back = read_text_table(path)
        assert set(back) == {"step", "value"}
        assert np.allclose(back["value"], cols["value"])

    def test_numpy_loadtxt_compatible(self, tmp_path):
        """The paper's MATLAB-style flow: plain numeric text files."""
        path = str(tmp_path / "data.txt")
        write_text_table(path, {"a": [1.5, 2.5], "b": [3, 4]})
        data = np.loadtxt(path)
        assert data.shape == (2, 2)

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="rows"):
            write_text_table(str(tmp_path / "x.txt"), {"a": [1], "b": [1, 2]})

    def test_empty_columns(self, tmp_path):
        with pytest.raises(ValueError):
            write_text_table(str(tmp_path / "x.txt"), {})

    def test_missing_header(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("1 2\n3 4\n")
        with pytest.raises(ValueError, match="header"):
            read_text_table(str(path))


class TestJsonRecords:
    def test_round_trip_with_numpy(self, tmp_path):
        path = str(tmp_path / "rec.json")
        write_json_record(
            path,
            {"a": np.int64(3), "b": np.float64(1.5), "c": np.arange(3)},
        )
        back = read_json_record(path)
        assert back == {"a": 3, "b": 1.5, "c": [0, 1, 2]}

    def test_dataclass_record(self, tmp_path):
        from repro.experiments import RunRecord

        rec = RunRecord(1, 100, "lem", "vectorized", 0, 50, 42, 0.5)
        path = str(tmp_path / "rec.json")
        write_json_record(path, rec)
        assert read_json_record(path)["throughput"] == 42


class TestPlots:
    def test_line_plot_renders(self):
        chart = line_plot(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, title="demo", xlabel="x"
        )
        assert "demo" in chart
        assert "a" in chart and "b" in chart
        assert len(chart.splitlines()) > 10

    def test_line_plot_constant_series(self):
        chart = line_plot({"flat": [5, 5, 5]})
        assert "flat" in chart

    def test_line_plot_empty_raises(self):
        with pytest.raises(ValueError):
            line_plot({})

    def test_bar_chart(self):
        chart = bar_chart(["x", "y"], [1.0, 2.0], title="bars")
        assert "bars" in chart
        assert chart.count("#") > 0

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["x"], [1.0, 2.0])


class TestRendering:
    def test_render_grid_glyphs(self):
        mat = np.zeros((3, 3), dtype=np.int8)
        mat[0, 0] = 1
        mat[2, 2] = 2
        out = render_grid(mat)
        lines = out.splitlines()
        assert lines[0][0] == "v"
        assert lines[2][2] == "^"
        assert lines[1][1] == "."

    def test_render_engine_small_uses_full_grid(self, tiny_config):
        eng = build_engine(tiny_config, "vectorized")
        out = render_engine(eng)
        assert len(out.splitlines()) == tiny_config.height

    def test_render_engine_large_uses_density(self):
        cfg = SimulationConfig(height=96, width=96, n_per_side=500, steps=1, seed=0)
        eng = build_engine(cfg, "vectorized")
        out = render_engine(eng)
        assert len(out.splitlines()) <= 24

    def test_density_view_marks_crowds(self):
        mat = np.zeros((40, 40), dtype=np.int8)
        mat[:10] = 1  # dense top block
        out = render_density(mat, out_rows=4, out_cols=4)
        assert "v" in out.splitlines()[0]
