"""Neighbourhood geometry tests (paper Figure 1 numbering)."""

import math

import numpy as np
import pytest

from repro.grid import (
    ABSOLUTE_OFFSETS,
    STEP_COSTS,
    absolute_offsets_array,
    offsets_array,
    slot_offsets,
    step_cost,
)
from repro.types import Group, NeighborSlot


class TestSlotOffsets:
    def test_top_forward_is_down(self):
        assert slot_offsets(Group.TOP)[0] == (1, 0)

    def test_bottom_forward_is_up(self):
        assert slot_offsets(Group.BOTTOM)[0] == (-1, 0)

    def test_groups_are_180_rotations(self):
        top = slot_offsets(Group.TOP)
        bottom = slot_offsets(Group.BOTTOM)
        for (tr, tc), (br, bc) in zip(top, bottom):
            assert (br, bc) == (-tr, -tc)

    def test_eight_unique_offsets_cover_moore(self):
        for group in (Group.TOP, Group.BOTTOM):
            offs = set(slot_offsets(group))
            assert len(offs) == 8
            assert offs == {
                (dr, dc)
                for dr in (-1, 0, 1)
                for dc in (-1, 0, 1)
                if (dr, dc) != (0, 0)
            }

    def test_backward_is_opposite_forward(self):
        for group in (Group.TOP, Group.BOTTOM):
            offs = slot_offsets(group)
            fwd = offs[NeighborSlot.FORWARD - 1]
            back = offs[NeighborSlot.BACKWARD - 1]
            assert back == (-fwd[0], -fwd[1])

    def test_offsets_array_dtype_shape(self):
        arr = offsets_array(Group.TOP)
        assert arr.shape == (8, 2)
        assert arr.dtype == np.int64


class TestStepCosts:
    def test_orthogonal_cost_one(self):
        for slot in (1, 4, 5, 6):
            assert step_cost(slot) == 1.0

    def test_diagonal_cost_sqrt2(self):
        for slot in (2, 3, 7, 8):
            assert step_cost(slot) == math.sqrt(2.0)

    def test_costs_match_offsets(self):
        for s, (dr, dc) in enumerate(slot_offsets(Group.TOP), start=1):
            assert step_cost(s) == math.sqrt(dr * dr + dc * dc)

    def test_slot_bounds(self):
        with pytest.raises(ValueError):
            step_cost(0)
        with pytest.raises(ValueError):
            step_cost(9)

    def test_costs_tuple_matches(self):
        assert len(STEP_COSTS) == 8


class TestAbsoluteOffsets:
    def test_count_and_uniqueness(self):
        assert len(set(ABSOLUTE_OFFSETS)) == 8

    def test_row_major_order(self):
        """The gather order must be the fixed NW..SE sweep."""
        assert ABSOLUTE_OFFSETS[0] == (-1, -1)
        assert ABSOLUTE_OFFSETS[-1] == (1, 1)
        assert list(ABSOLUTE_OFFSETS) == sorted(ABSOLUTE_OFFSETS)

    def test_array_form(self):
        arr = absolute_offsets_array()
        assert arr.shape == (8, 2)
        assert np.array_equal(arr[1], [-1, 0])
