"""Timer tests."""

import time

import pytest

from repro.cuda import CudaEvent, Stopwatch, event_elapsed_ms


class TestCudaEvent:
    def test_record_and_elapsed(self):
        a = CudaEvent().record()
        time.sleep(0.01)
        b = CudaEvent().record()
        ms = event_elapsed_ms(a, b)
        assert ms >= 5.0

    def test_unrecorded_raises(self):
        with pytest.raises(RuntimeError):
            CudaEvent().timestamp

    def test_recorded_flag(self):
        e = CudaEvent()
        assert not e.recorded
        e.record()
        assert e.recorded


class TestStopwatch:
    def test_laps_accumulate(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                time.sleep(0.002)
        assert len(sw.laps) == 3
        assert sw.total >= 0.006
        assert sw.mean == pytest.approx(sw.total / 3)

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_mean_empty(self):
        assert Stopwatch().mean == 0.0
