"""BatchedTiledEngine: tile-decomposed whole-batch stepping, bit-exact.

The batched tiled engine stacks every replication's grid behind the
tile loop, so each shared-memory tile pass covers all B lanes (and both
movement groups) in one set of launches. The contract is the same as
every other engine pairing in this repo: trajectories must be
bit-identical — to the flat :class:`BatchedEngine`, to solo
:class:`TiledEngine` runs, and to the seed golden throughputs.
"""

import numpy as np
import pytest

from repro import SimulationConfig
from repro.cuda import BatchedTiledEngine
from repro.cuda.tiled_engine import TiledEngine
from repro.engine import BatchedEngine, run_batched
from repro.errors import LaunchConfigError
from repro.types import Group


def _config(model: str, seed: int = 0, height: int = 32) -> SimulationConfig:
    return SimulationConfig(
        height=height, width=32, n_per_side=24, steps=25, seed=seed
    ).with_model(model)


def _assert_batches_equal(a, b):
    """Every lane of two batched engines holds identical end state."""
    assert a.n_lanes == b.n_lanes
    for lane in range(a.n_lanes):
        assert a.lane_environment(lane).equals(b.lane_environment(lane))
        assert a.lane_population(lane).equals(b.lane_population(lane))
        for group in (Group.TOP, Group.BOTTOM):
            pa = a.lane_pheromone(lane, group)
            pb = b.lane_pheromone(lane, group)
            if pa is None:
                assert pb is None
            else:
                np.testing.assert_array_equal(pa, pb)


class TestBatchedTiledEquivalence:
    @pytest.mark.parametrize("model", ["lem", "aco"])
    def test_matches_flat_batched_engine(self, model):
        seeds = (0, 1, 2, 3)
        cfg = _config(model)
        tiled = BatchedTiledEngine(cfg, seeds=seeds)
        flat = BatchedEngine(cfg, seeds=seeds)
        r_tiled = tiled.run(record_timeline=True)
        r_flat = flat.run(record_timeline=True)
        for got, want in zip(r_tiled, r_flat):
            assert got.throughput_total == want.throughput_total
            np.testing.assert_array_equal(got.moved_per_step, want.moved_per_step)
            np.testing.assert_array_equal(
                got.crossings_per_step, want.crossings_per_step
            )
        _assert_batches_equal(tiled, flat)

    @pytest.mark.parametrize("model", ["lem", "aco"])
    def test_lanes_match_solo_tiled_engine(self, model):
        seeds = (0, 5)
        cfg = _config(model)
        batched = BatchedTiledEngine(cfg, seeds=seeds)
        batched.run(record_timeline=False)
        for lane, seed in enumerate(seeds):
            solo = TiledEngine(cfg, seed=seed)
            solo.run(record_timeline=False)
            assert batched.lane_environment(lane).equals(solo.env)
            assert batched.lane_population(lane).equals(solo.pop)

    def test_padded_heterogeneous_lanes(self):
        """Lanes of different grid heights stay solo-exact under tiling."""
        configs = [
            _config("lem", 0, height=32),
            _config("lem", 1, height=48),
        ]
        seeds = (0, 1)
        batched = BatchedTiledEngine(configs, seeds=seeds)
        batched.run(record_timeline=False)
        for lane, (cfg, seed) in enumerate(zip(configs, seeds)):
            solo = TiledEngine(cfg, seed=seed)
            solo.run(record_timeline=False)
            assert batched.lane_environment(lane).equals(solo.env)
            assert batched.lane_population(lane).equals(solo.pop)

    def test_lanes_match_seed_golden_throughputs(self):
        """The golden scenario from test_backend_parity, batched-tiled."""
        golden = {0: 55, 3: 49}  # (lem, seed) -> seed-tree throughput
        seeds = tuple(golden)
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=48, steps=40
        ).with_model("lem")
        eng = BatchedTiledEngine(cfg, seeds=seeds)
        eng.run(record_timeline=False)
        for lane, seed in enumerate(seeds):
            assert eng.throughput(lane) == golden[seed]


class TestBatchedTiledAPI:
    def test_platform_name(self):
        eng = BatchedTiledEngine(_config("lem"), seeds=(0,))
        assert eng.platform == "batched_tiled"

    def test_run_batched_engine_selector(self):
        cfg = _config("aco")
        seeds = (0, 1)
        via_tiled = run_batched(cfg, seeds, engine="tiled", record_timeline=True)
        via_flat = run_batched(cfg, seeds, record_timeline=True)
        for got, want in zip(via_tiled.results, via_flat.results):
            assert got.throughput_total == want.throughput_total
            np.testing.assert_array_equal(got.moved_per_step, want.moved_per_step)

    def test_run_batched_rejects_unknown_engine(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="unknown"):
            run_batched(_config("lem"), (0,), engine="warp")

    def test_rejects_indivisible_grid(self):
        cfg = _config("lem").replace(height=30)
        with pytest.raises(LaunchConfigError, match="tile"):
            BatchedTiledEngine(cfg, seeds=(0,))

    def test_rejects_indivisible_lane_in_mixed_batch(self):
        configs = [_config("lem", 0), _config("lem", 1).replace(width=20)]
        with pytest.raises(LaunchConfigError, match="tile"):
            BatchedTiledEngine(configs, seeds=(0, 1))
