"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("info", "run", "sweep", "occupancy", "speedup"):
            assert parser.parse_args([cmd]).command == cmd

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--model", "aco", "--engine", "tiled", "--steps", "5"]
        )
        assert args.model == "aco" and args.engine == "tiled" and args.steps == 5

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "1-3", "--lanes", "4", "--smoke"]
        )
        assert args.scenarios == "1-3" and args.lanes == 4 and args.smoke

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "boids"])

    def test_serve_analytics_db_option(self):
        args = build_parser().parse_args(
            ["serve", "--analytics-db", "runs.sqlite"]
        )
        assert args.analytics_db == "runs.sqlite"
        assert build_parser().parse_args(["serve"]).analytics_db is None

    def test_analytics_options(self):
        args = build_parser().parse_args(
            ["analytics", "--db", "runs.sqlite", "--scenario", "64x64",
             "--diagram"]
        )
        assert args.db == "runs.sqlite"
        assert args.scenario == "64x64" and args.diagram

    def test_analytics_db_and_host_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analytics", "--db", "a.sqlite", "--host", "localhost"]
            )


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 560 Ti" in out and "scales:" in out

    def test_run(self, capsys):
        code = main(
            ["run", "--height", "16", "--width", "16", "--agents", "10",
             "--steps", "20", "--model", "aco"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crossed" in out
        assert "lane order" in out

    def test_run_named_scenario(self, capsys):
        code = main(
            ["run", "--scenario", "crossing:12x12", "--scale", "tiny"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "12x12" in out and "crossed" in out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["run", "--scenario", "metro:9"]) == 2
        out = capsys.readouterr().out
        assert "error:" in out and "registered" in out

    def test_run_profile_dispatch(self, capsys):
        code = main(
            ["run", "--height", "16", "--width", "16", "--agents", "10",
             "--steps", "5", "--profile-dispatch"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crossed" in out
        assert "dispatch profile over 5 steps" in out
        assert "ops/step" in out and "hottest ops:" in out

    def test_sweep_named_scenarios_smoke(self, capsys):
        code = main(["sweep", "--scenario", "crossing:*", "--smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossing:12x12" in out and "crossing:16x16" in out

    def test_sweep_named_scenarios(self, capsys):
        code = main(
            ["sweep", "--scenario", "boarding:12x5", "--scale", "tiny",
             "--seeds", "2", "--models", "lem"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "boarding:12x5" in out

    def test_sweep_bad_named_scenario_exits_2(self, capsys):
        assert main(["sweep", "--scenario", "boarding:2x2"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_run_render(self, capsys):
        code = main(
            ["run", "--height", "16", "--width", "16", "--agents", "10",
             "--steps", "5", "--render"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crossed" in out and len(out.splitlines()) > 10

    def test_occupancy(self, capsys):
        assert main(["occupancy", "--threads", "256", "--registers", "20"]) == 0
        out = capsys.readouterr().out
        assert "100%" in out

    def test_speedup(self, capsys):
        assert main(["speedup", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert "17.95x" in out or "agents:" in out

    def test_notes(self, capsys):
        assert main(["notes", "--agents", "2560"]) == 0
        out = capsys.readouterr().out
        assert "Implementation notes" in out
        assert "initial_calculation" in out

    def test_figures_tiny(self, tmp_path, capsys):
        code = main(
            ["figures", "--outdir", str(tmp_path / "res"), "--scale", "tiny",
             "--seeds", "1"]
        )
        assert code == 0
        assert (tmp_path / "res" / "report.json").exists()
        assert (tmp_path / "res" / "fig6a_throughput.txt").exists()
        assert (tmp_path / "res" / "table1_hardware.txt").exists()


class TestAnalyticsCommand:
    @pytest.fixture()
    def db(self, tmp_path, tiny_config):
        # Two completed runs on different geometries, written the same
        # way the service writes them.
        from repro.analytics import RunStore

        path = str(tmp_path / "runs.sqlite")
        store = RunStore(path)
        for i, cfg in enumerate(
            (tiny_config, tiny_config.replace(height=24, width=24, seed=5))
        ):
            rid = f"job-{i:06d}"
            store.begin_run(rid, cfg, "vectorized", f"d{i}")
            store.finish_run(
                rid, "done", throughput_total=12 + i, wall_seconds=0.1
            )
        store.close()
        return path

    def test_offline_listing(self, db, capsys):
        assert main(["analytics", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "16x16" in out and "24x24" in out

    def test_offline_diagram(self, db, capsys):
        assert main(["analytics", "--db", db, "--diagram"]) == 0
        out = capsys.readouterr().out
        assert "fundamental diagram" in out
        assert "2 completed run(s) plotted" in out

    def test_offline_json(self, db, capsys):
        import json

        assert main(["analytics", "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 2
        assert len(payload["points"]) == 2
        assert payload["scenarios"] == ["16x16", "24x24"]

    def test_scenario_filter(self, db, capsys):
        assert main(["analytics", "--db", db, "--scenario", "24x24"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s) in 24x24" in out

    def test_missing_db_is_a_clean_error(self, tmp_path, capsys):
        assert main(["analytics", "--db", str(tmp_path / "nope.sqlite")]) == 2
        assert "no analytics store" in capsys.readouterr().out
