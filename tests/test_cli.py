"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("info", "run", "sweep", "occupancy", "speedup"):
            assert parser.parse_args([cmd]).command == cmd

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--model", "aco", "--engine", "tiled", "--steps", "5"]
        )
        assert args.model == "aco" and args.engine == "tiled" and args.steps == 5

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "1-3", "--lanes", "4", "--smoke"]
        )
        assert args.scenarios == "1-3" and args.lanes == 4 and args.smoke

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "boids"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 560 Ti" in out and "scales:" in out

    def test_run(self, capsys):
        code = main(
            ["run", "--height", "16", "--width", "16", "--agents", "10",
             "--steps", "20", "--model", "aco"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crossed" in out
        assert "lane order" in out

    def test_run_render(self, capsys):
        code = main(
            ["run", "--height", "16", "--width", "16", "--agents", "10",
             "--steps", "5", "--render"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crossed" in out and len(out.splitlines()) > 10

    def test_occupancy(self, capsys):
        assert main(["occupancy", "--threads", "256", "--registers", "20"]) == 0
        out = capsys.readouterr().out
        assert "100%" in out

    def test_speedup(self, capsys):
        assert main(["speedup", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert "17.95x" in out or "agents:" in out

    def test_notes(self, capsys):
        assert main(["notes", "--agents", "2560"]) == 0
        out = capsys.readouterr().out
        assert "Implementation notes" in out
        assert "initial_calculation" in out

    def test_figures_tiny(self, tmp_path, capsys):
        code = main(
            ["figures", "--outdir", str(tmp_path / "res"), "--scale", "tiny",
             "--seeds", "1"]
        )
        assert code == 0
        assert (tmp_path / "res" / "report.json").exists()
        assert (tmp_path / "res" / "fig6a_throughput.txt").exists()
        assert (tmp_path / "res" / "table1_hardware.txt").exists()
