"""Tiled-engine specifics beyond the equivalence suite."""

import numpy as np
import pytest

from repro import SimulationConfig, build_engine
from repro.cuda import TiledEngine
from repro.errors import LaunchConfigError


class TestConstruction:
    def test_default_tile_size_16(self):
        cfg = SimulationConfig(height=32, width=48, n_per_side=40, steps=5, seed=0)
        eng = TiledEngine(cfg)
        assert eng.tiles.tile_size == 16
        assert eng.tiles.n_tiles == 6

    def test_custom_tile_size(self):
        cfg = SimulationConfig(height=32, width=32, n_per_side=40, steps=5, seed=0)
        eng = TiledEngine(cfg, tile_size=8)
        assert eng.tiles.n_tiles == 16

    def test_rejects_mismatched_tile(self):
        cfg = SimulationConfig(height=32, width=32, n_per_side=40, steps=5, seed=0)
        with pytest.raises(LaunchConfigError):
            TiledEngine(cfg, tile_size=12)


class TestTileSizeInvariance:
    @pytest.mark.parametrize("tile_size", [8, 16, 32])
    def test_results_independent_of_tile_size(self, tile_size):
        """The decomposition granularity must never change the physics."""
        cfg = SimulationConfig(
            height=32, width=32, n_per_side=80, steps=25, seed=9
        ).with_model("aco")
        ref = build_engine(cfg, "vectorized")
        tiled = TiledEngine(cfg, tile_size=tile_size)
        for _ in range(25):
            assert ref.step() == tiled.step()
        assert ref.state_equals(tiled)


class TestCrossTileMovement:
    def test_agents_cross_tile_boundaries(self):
        """Agents must flow through tile edges via the halo reads."""
        cfg = SimulationConfig(height=48, width=16, n_per_side=30, steps=250, seed=2)
        eng = TiledEngine(cfg)
        start_tiles = set(np.unique(eng.pop.rows[1:] // 16))
        assert start_tiles == {0, 2}  # both populations in their end tiles
        eng.run(record_timeline=False)
        # Crossing the grid requires passing through the middle tile.
        assert eng.throughput() >= 50

    def test_platform_tag(self):
        cfg = SimulationConfig(height=16, width=16, n_per_side=5, steps=1, seed=0)
        assert TiledEngine(cfg).platform == "tiled"
