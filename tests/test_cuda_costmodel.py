"""Cost model tests: calibration, Fig 5 shapes, kernel pricing."""

import pytest

from repro.cuda import (
    CpuCostModel,
    GpuCostModel,
    PAPER_ACO_OVER_LEM,
    PAPER_ENDPOINTS,
    cpu_stage_workloads,
    gpu_kernel_workloads,
    paper_speedup_curve,
)


class TestCalibration:
    def test_gpu_endpoints_exact(self):
        model = GpuCostModel.calibrated("aco")
        for n, target in PAPER_ENDPOINTS["gpu"].items():
            assert model.simulation_time(n) == pytest.approx(target, rel=1e-6)

    def test_cpu_endpoints_exact(self):
        model = CpuCostModel.calibrated("aco")
        for n, target in PAPER_ENDPOINTS["cpu"].items():
            assert model.simulation_time(n) == pytest.approx(target, rel=1e-6)

    def test_efficiencies_physical(self):
        """Calibrated efficiencies must be positive fractions of peak."""
        for model in (GpuCostModel.calibrated("aco"), CpuCostModel.calibrated("aco")):
            for eff in model.efficiency.values():
                assert 0.0 < eff <= 1.0


class TestFig5Shapes:
    def test_speedup_declines_18x_to_11x(self):
        """Fig 5c: 18x at 2,560 agents falling to ~11x at 102,400."""
        curve = paper_speedup_curve([2560, 102400])
        assert curve[0][1] == pytest.approx(17.95, abs=0.3)
        assert curve[1][1] == pytest.approx(11.44, abs=0.3)

    def test_speedup_monotone_decreasing(self):
        counts = list(range(2560, 102401, 2560))
        speedups = [s for _, s in paper_speedup_curve(counts)]
        assert all(a >= b for a, b in zip(speedups, speedups[1:]))

    def test_aco_over_lem_ratio(self):
        """Fig 5a: ACO carries ~11% more time than LEM at every size."""
        aco = GpuCostModel.calibrated("aco")
        lem = GpuCostModel.calibrated("lem")
        for n in (2560, 51200, 102400):
            ratio = aco.simulation_time(n) / lem.simulation_time(n, "lem")
            assert ratio == pytest.approx(PAPER_ACO_OVER_LEM, rel=0.01)

    def test_gpu_time_grows_slowly(self):
        """GPU time grows ~2.7x over a 40x agent increase (per-cell work
        dominates)."""
        model = GpuCostModel.calibrated("aco")
        growth = model.simulation_time(102400) / model.simulation_time(2560)
        assert 2.0 < growth < 3.5

    def test_cpu_time_growth(self):
        model = CpuCostModel.calibrated("aco")
        growth = model.simulation_time(102400) / model.simulation_time(2560)
        assert 1.5 < growth < 2.0  # 1449 / 837.5

    def test_times_monotone_in_agents(self):
        gpu = GpuCostModel.calibrated("aco")
        times = [gpu.simulation_time(n) for n in (2560, 25600, 51200, 102400)]
        assert all(a < b for a, b in zip(times, times[1:]))


class TestKernelPricing:
    def test_kernel_times_positive(self):
        model = GpuCostModel.calibrated("aco")
        for kt in model.kernel_times(25600):
            assert kt.seconds > 0
            assert kt.bound in ("compute", "memory")

    def test_step_time_is_kernel_sum(self):
        model = GpuCostModel.calibrated("aco")
        kts = model.kernel_times(25600)
        assert model.step_time(25600) == pytest.approx(sum(k.seconds for k in kts))

    def test_four_gpu_kernels(self):
        names = [k.name for k in GpuCostModel.calibrated("aco").kernel_times(2560)]
        assert names == [
            "initial_calculation",
            "tour_construction",
            "agent_movement",
            "support_reset",
        ]

    def test_tour_kernel_threads_8n(self):
        wls = gpu_kernel_workloads(480, 480, 2560, "aco")
        tour = next(w for w in wls if w.name == "tour_construction")
        assert tour.threads == 8 * 2560

    def test_cell_kernel_threads_grid(self):
        wls = gpu_kernel_workloads(480, 480, 2560, "lem")
        scan = next(w for w in wls if w.name == "initial_calculation")
        assert scan.threads == 480 * 480

    def test_aco_kernels_cost_more(self):
        lem = gpu_kernel_workloads(480, 480, 2560, "lem")
        aco = gpu_kernel_workloads(480, 480, 2560, "aco")
        for wl, wa in zip(lem, aco):
            assert wa.bytes_per_thread >= wl.bytes_per_thread
            assert wa.instructions_per_thread >= wl.instructions_per_thread

    def test_cpu_workloads_scale(self):
        small = cpu_stage_workloads(480, 480, 2560, "aco")
        large = cpu_stage_workloads(480, 480, 102400, "aco")
        agent_small = next(w for w in small if w.category == "agent")
        agent_large = next(w for w in large if w.category == "agent")
        assert agent_large.threads == 40 * agent_small.threads


class TestScalingExtrapolation:
    def test_steps_linear(self):
        model = GpuCostModel.calibrated("aco")
        t1 = model.simulation_time(2560, steps=1000)
        t2 = model.simulation_time(2560, steps=2000)
        assert t2 == pytest.approx(2 * t1)

    def test_grid_dependence(self):
        model = GpuCostModel.calibrated("aco")
        big = model.step_time(2560, grid=(480, 480))
        small = model.step_time(2560, grid=(160, 160))
        assert small < big
