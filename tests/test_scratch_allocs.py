"""Per-step allocation budgets: the scratch arena must stay in use.

Companion to ``tests/test_dispatch_budget.py``, measuring *allocating*
dispatches per steady-state step (namespace calls that return a fresh
array — no ``out=`` and not in ``NON_ALLOC_OPS``). The ``PRE_ARENA``
constants are the same measurement taken on the PR-9 tree (before the
scratch arena and the ``out=``-capable ops), kept as fixed reference
points so the headline criterion — batched allocations per step cut by
at least half — is asserted against history, not a drifting baseline.

Budgets carry modest headroom over the measured post-arena counts;
exceeding one means a hot step-loop temporary went back to fresh heap
allocation.
"""

import pytest

from repro import SimulationConfig
from repro.backend import ScratchArena, resolve_backend
from repro.engine import BatchedEngine, build_engine

#: Steady-state allocs/step on the PR-9 tree (no arena), same scenario.
PRE_ARENA = {
    "sequential": 12.0,
    "vectorized": 58.0,
    "tiled": 157.0,
    "batched4": 60.0,
    "padded4": 60.0,
}

#: Post-arena budgets: measured allocs/step plus headroom for drift.
#: batched4's 30 is the PR-10 acceptance ceiling, not just headroom.
ALLOC_BUDGETS = {
    "sequential": 8,
    "vectorized": 32,
    "tiled": 155,
    "batched4": 30,
    "padded4": 30,
}

PROFILE_NAME = "profile:numpy"
WARMUP_STEPS = 3
MEASURED_STEPS = 5


def _config(seed: int = 0, height: int = 32) -> SimulationConfig:
    return SimulationConfig(
        height=height, width=32, n_per_side=24, steps=40, seed=seed,
        backend=PROFILE_NAME,
    ).with_model("lem")


def _steady_allocs_per_step(engine) -> float:
    backend = engine.backend
    for _ in range(WARMUP_STEPS):
        engine.step()
    backend.reset()
    for _ in range(MEASURED_STEPS):
        engine.step()
    return backend.snapshot().allocs / MEASURED_STEPS


def _build(kind: str):
    if kind == "batched4":
        return BatchedEngine(_config(), seeds=(0, 1, 2, 3))
    if kind == "padded4":
        configs = [_config(s, height=32 if s % 2 == 0 else 48) for s in range(4)]
        return BatchedEngine(configs, seeds=tuple(range(4)))
    return build_engine(_config(), engine=kind)


@pytest.mark.parametrize("kind", sorted(ALLOC_BUDGETS))
def test_engine_stays_within_alloc_budget(kind):
    resolve_backend(PROFILE_NAME).reset()
    allocs = _steady_allocs_per_step(_build(kind))
    assert allocs <= ALLOC_BUDGETS[kind], (
        f"{kind}: {allocs:.1f} allocs/step exceeds the "
        f"{ALLOC_BUDGETS[kind]} budget — a step-loop temporary has gone "
        f"back to fresh heap allocation"
    )


def test_batched_alloc_cut_meets_headline_criterion():
    """PR-10 acceptance: batched allocs/step down >= 50% vs pre-arena."""
    resolve_backend(PROFILE_NAME).reset()
    allocs = _steady_allocs_per_step(_build("batched4"))
    assert allocs <= 0.5 * PRE_ARENA["batched4"], (
        f"batched engine at {allocs:.1f} allocs/step is less than a 50% "
        f"cut from the pre-arena {PRE_ARENA['batched4']} allocs/step"
    )


def test_every_engine_allocates_less_than_pre_arena():
    for kind, pre in PRE_ARENA.items():
        resolve_backend(PROFILE_NAME).reset()
        allocs = _steady_allocs_per_step(_build(kind))
        assert allocs < pre, (
            f"{kind}: {allocs:.1f} allocs/step >= pre-arena {pre}"
        )


def test_scratch_arena_reuses_and_grows():
    import numpy as np

    backend = resolve_backend("numpy")
    arena = backend.scratch_arena()
    assert isinstance(arena, ScratchArena)
    a = arena.take("k", (8, 8), np.float64)
    b = arena.take("k", (8, 8), np.float64)
    assert a is b  # same key, same shape: the buffer is reused
    # A smaller request is a leading-slice view of the same capacity.
    c = arena.take("k", (4, 8), np.float64)
    assert c.base is b or c.base is b.base
    # Growing re-allocates once, then sticks at the new capacity.
    d = arena.take("k", (16, 8), np.float64)
    assert d.shape == (16, 8)
    e = arena.take("k", (16, 8), np.float64)
    assert d is e
    filled = arena.take_filled("z", (3,), np.int64, fill=-1)
    assert (filled == -1).all()
    assert len(arena) == 2 and arena.nbytes > 0
