"""Real-CuPy parity: the GPU path must match NumPy bit for bit.

Opt-in hardware leg (``pytest -m cupy``): every test here skips cleanly
unless CuPy imports *and* a CUDA device answers, so the module is inert
on CPU-only runners and in the default suite. The mocked-cupy dispatch
tests (``test_backend_cupy_mock.py``) cover the code path GPU-less;
this file is where the bit-identity guarantee meets real silicon.
"""

import pytest

from repro import SimulationConfig, build_engine, run_batched, run_simulation
from repro.io import engine_state_digest

pytestmark = pytest.mark.cupy


def _gpu_available() -> bool:
    try:
        import cupy

        return cupy.cuda.runtime.getDeviceCount() > 0
    except Exception:
        return False


requires_gpu = pytest.mark.skipif(
    not _gpu_available(), reason="needs CuPy with a visible CUDA device"
)


def _cfg(model="lem", seed=0):
    return SimulationConfig(
        height=32, width=32, n_per_side=48, steps=40, seed=seed
    ).with_model(model)


@requires_gpu
@pytest.mark.parametrize("model", ["lem", "aco", "random", "greedy"])
@pytest.mark.parametrize("seed", [0, 3])
def test_cupy_state_matches_numpy(model, seed):
    """Same (config, seed): identical final state across backends."""
    cpu = build_engine(_cfg(model, seed), backend="numpy")
    gpu = build_engine(_cfg(model, seed), backend="cupy")
    cpu_result = cpu.run(record_timeline=False)
    gpu_result = gpu.run(record_timeline=False)
    assert gpu_result.throughput_total == cpu_result.throughput_total
    assert engine_state_digest(gpu) == engine_state_digest(cpu)


@requires_gpu
def test_cupy_batched_lanes_match_numpy(seeds=(0, 1, 2)):
    cpu = run_batched(_cfg("aco"), seeds, record_timeline=True)
    gpu = run_batched(
        _cfg("aco").replace(backend="cupy"), seeds, record_timeline=True
    )
    for cpu_lane, gpu_lane in zip(cpu.results, gpu.results):
        assert gpu_lane.throughput_total == cpu_lane.throughput_total
        assert (
            gpu_lane.moved_per_step.tolist() == cpu_lane.moved_per_step.tolist()
        )


@requires_gpu
def test_cupy_run_simulation_timeline(seed=1):
    cfg = _cfg("lem", seed)
    cpu = run_simulation(cfg, record_timeline=True)
    gpu = run_simulation(cfg.replace(backend="cupy"), record_timeline=True)
    assert (
        gpu.result.crossings_per_step.tolist()
        == cpu.result.crossings_per_step.tolist()
    )
