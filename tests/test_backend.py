"""Backend layer: registry, NumPy backend, CuPy guard, import hygiene."""

import ast
import pathlib

import numpy as np
import pytest

import repro.backend.core as backend_core
from repro.backend import (
    ArrayBackend,
    BackendCapabilities,
    CupyBackend,
    NumpyBackend,
    available_backends,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backend import cupy_backend as cupy_backend_module
from repro.errors import BackendUnavailableError, ReproError

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def scratch_registry():
    """Snapshot/restore the backend registry around a test."""
    factories = dict(backend_core._FACTORIES)
    instances = dict(backend_core._INSTANCES)
    yield
    backend_core._FACTORIES.clear()
    backend_core._FACTORIES.update(factories)
    backend_core._INSTANCES.clear()
    backend_core._INSTANCES.update(instances)


class TestRegistry:
    def test_numpy_and_cupy_are_registered(self):
        assert "numpy" in registered_backends()
        assert "cupy" in registered_backends()

    def test_numpy_is_available(self):
        assert "numpy" in available_backends()

    def test_default_resolution_is_numpy(self):
        backend = resolve_backend(None)
        assert backend.name == "numpy"
        assert backend.xp is np

    def test_resolution_is_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_backend_instance_passes_through(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_unknown_backend_raises_clean_error(self):
        with pytest.raises(BackendUnavailableError, match="unknown array backend"):
            resolve_backend("tpu")

    def test_backend_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            resolve_backend("not-a-backend")

    def test_register_rejects_duplicates_without_replace(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_replace_swaps_factory(self, scratch_registry):
        class Marker(NumpyBackend):
            pass

        register_backend("numpy", Marker, replace=True)
        assert isinstance(resolve_backend("numpy"), Marker)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)


class TestNumpyBackend:
    def test_capability_record(self):
        caps = resolve_backend("numpy").capabilities
        assert caps == BackendCapabilities(
            name="numpy",
            module="numpy",
            device="cpu",
            native_scatter_add=True,
            supports_float64=True,
        )
        assert not caps.is_gpu

    def test_transfers_are_zero_copy(self):
        backend = resolve_backend("numpy")
        arr = np.arange(5)
        assert backend.from_host(arr) is arr
        assert backend.to_host(arr) is arr

    def test_scatter_add_handles_duplicates(self):
        backend = resolve_backend("numpy")
        out = np.zeros(3)
        backend.scatter_add(out, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]))
        assert out.tolist() == [3.0, 0.0, 5.0]

    def test_synchronize_is_a_noop(self):
        resolve_backend("numpy").synchronize()


class TestCupyGuard:
    def test_resolve_cupy_without_cupy_raises_unavailable(self, monkeypatch):
        def boom():
            raise ImportError("No module named 'cupy'")

        monkeypatch.setattr(cupy_backend_module, "_import_cupy", boom)
        backend_core._INSTANCES.pop("cupy", None)
        with pytest.raises(BackendUnavailableError, match="repro\\[gpu\\]"):
            resolve_backend("cupy")

    def test_direct_construction_without_cupyx_rejected(self):
        with pytest.raises(BackendUnavailableError):
            CupyBackend(cupy_module=np, cupyx_module=None)


def _cupy_imports(tree: ast.AST):
    """Yield every cupy/cupyx import node anywhere in ``tree``.

    ``ast.walk`` covers all scopes — module level, try/if blocks *and*
    function bodies — so the invariant enforced is the strong one:
    ``repro/backend/cupy_backend.py`` is the only module that imports
    cupy at all.
    """

    def is_cupy(name: str) -> bool:
        return name in ("cupy", "cupyx") or name.startswith(("cupy.", "cupyx."))

    for node in ast.walk(tree):
        names = []
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names]
        elif (
            isinstance(node, ast.ImportFrom)
            and node.module
            and node.level == 0  # absolute imports only
        ):
            names = [node.module]
        if any(is_cupy(n) for n in names):
            yield node


class TestImportHygiene:
    def test_cupy_imported_only_in_the_guarded_backend_module(self):
        """cupy_backend.py is the sole module importing cupy, in any scope.

        A cupy import anywhere else — module level, a try block, or a
        function body — either breaks ``import repro`` on GPU-less
        machines or plants a latent runtime failure; this AST walk (plus
        the column-0 grep in CI) keeps the guard honest.
        """
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.relative_to(SRC_ROOT).as_posix() == "backend/cupy_backend.py":
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in _cupy_imports(tree):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{node.lineno}")
        assert offenders == [], f"cupy imports outside the backend: {offenders}"

    def test_guard_catches_try_wrapped_and_function_scoped_imports(self):
        """The walker sees imports in try blocks and function bodies."""
        sneaky_try = "try:\n    import cupy\nexcept ImportError:\n    cupy = None\n"
        sneaky_def = "def f():\n    import cupyx\n"
        assert list(_cupy_imports(ast.parse(sneaky_try)))
        assert list(_cupy_imports(ast.parse(sneaky_def)))

    def test_base_backend_protocol_surface(self):
        backend = ArrayBackend()
        assert backend.xp is np
        out = np.zeros(2)
        backend.scatter_add(out, np.array([1]), 4.0)
        assert out[1] == 4.0


class TestFloat64Enforcement:
    def test_engines_reject_reduced_precision_backends(self, scratch_registry):
        from repro import SimulationConfig, build_engine
        from repro.errors import EngineError

        class HalfBackend(NumpyBackend):
            capabilities = BackendCapabilities(
                name="half", module="numpy", device="cpu", supports_float64=False
            )

        register_backend("half", HalfBackend)
        cfg = SimulationConfig(height=16, width=16, n_per_side=8, steps=2,
                               backend="half")
        with pytest.raises(EngineError, match="float64"):
            build_engine(cfg)

    def test_batched_engine_rejects_reduced_precision_backends(
        self, scratch_registry
    ):
        from repro import SimulationConfig
        from repro.engine import BatchedEngine
        from repro.errors import EngineError

        class HalfBackend(NumpyBackend):
            capabilities = BackendCapabilities(
                name="half", module="numpy", device="cpu", supports_float64=False
            )

        register_backend("half", HalfBackend)
        cfg = SimulationConfig(height=16, width=16, n_per_side=8, steps=2,
                               backend="half")
        with pytest.raises(EngineError, match="float64"):
            BatchedEngine(cfg, seeds=(0, 1))
