"""Runner plumbing tests (scale routing, artefact shapes)."""

import os

import pytest

from repro.experiments import run_all
from repro.io import read_json_record, read_text_table


class TestRunnerScaleRouting:
    def test_explicit_fig5_scale(self, tmp_path):
        outdir = str(tmp_path / "r")
        run_all(
            outdir,
            scale="tiny",
            fig5_scale="tiny",
            fig5_scenarios=(1,),
            fig5_steps=10,
            fig6a_scenarios=(1,),
            fig6a_seeds=(0,),
            fig6b_scenarios=(14, 16),
            fig6b_seeds_cpu=(100, 101),
            fig6b_seeds_gpu=(200, 201),
            verbose=False,
        )
        table = read_text_table(os.path.join(outdir, "fig5_measured.txt"))
        assert len(table["scenario"]) == 3  # lem/vec, aco/vec, aco/seq

    def test_report_json_complete(self, tmp_path):
        outdir = str(tmp_path / "r")
        report = run_all(
            outdir,
            scale="tiny",
            fig5_scenarios=(1,),
            fig5_steps=10,
            fig6a_scenarios=(1, 8),
            fig6a_seeds=(0,),
            fig6b_scenarios=(14, 16),
            fig6b_seeds_cpu=(100, 101),
            fig6b_seeds_gpu=(200, 201),
            verbose=False,
        )
        blob = read_json_record(os.path.join(outdir, "report.json"))
        assert len(blob["fig5_modelled"]) == 40
        assert len(blob["fig6a"]) == 2
        assert len(blob["fig6b"]) == 2
        assert "measured_speedups" in blob["notes"]
        assert blob["fig6a_overall_gain"] == pytest.approx(
            report.fig6a_overall_gain
        )

    def test_all_artifacts_exist(self, tmp_path):
        outdir = str(tmp_path / "r")
        run_all(
            outdir,
            scale="tiny",
            fig5_scenarios=(1,),
            fig5_steps=5,
            fig6a_scenarios=(1,),
            fig6a_seeds=(0,),
            fig6b_scenarios=(14, 16),
            fig6b_seeds_cpu=(100, 101),
            fig6b_seeds_gpu=(200, 201),
            verbose=False,
        )
        for name in (
            "table1_hardware.txt",
            "fig5_modelled.txt",
            "fig5_measured.txt",
            "fig6a_throughput.txt",
            "fig6a_plot.txt",
            "fig6b_platforms.txt",
            "fig6b_glm.txt",
            "report.json",
        ):
            assert os.path.exists(os.path.join(outdir, name)), name
