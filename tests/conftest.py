"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import SimulationConfig
from repro.rng import PhiloxKeyedRNG


@pytest.fixture
def rng() -> PhiloxKeyedRNG:
    """A keyed RNG with a fixed seed."""
    return PhiloxKeyedRNG(42)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A small LEM configuration usable by every engine (multiple of 16)."""
    return SimulationConfig(height=32, width=32, n_per_side=60, steps=50, seed=7)


@pytest.fixture
def small_aco_config(small_config) -> SimulationConfig:
    """The small configuration running the ACO model."""
    return small_config.with_model("aco")


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A minimal configuration for per-step inspection tests."""
    return SimulationConfig(height=16, width=16, n_per_side=12, steps=20, seed=3)
