"""Component framework: registries, step hooks and named scenarios.

Covers the registry contract (duplicates refused, unknown names listed),
the model registry behind :func:`repro.models.build_model`, step-hook
wire round-trips and engine semantics (including per-lane hooks inside
padded batches staying bit-identical to solo runs), and the named
scenario families end-to-end through configs, digests, sweeps and the
analytics store.
"""

import numpy as np
import pytest

from repro import SimulationConfig
from repro.analytics import RunStore
from repro.components import MODEL_PARAMS, Registry
from repro.components.hooks import HOOKS, PanicHook, hook_from_dict, panic_variant
from repro.components.scenarios import (
    SCENARIOS,
    build_scenario,
    expand_scenarios,
    parse_scenario_name,
)
from repro.engine import BatchedEngine, build_engine
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments import SweepPoint, SweepRunner, named_sweep_points
from repro.io import config_digest
from repro.models import build_model, params_from_dict, params_from_name


class TestRegistry:
    def test_register_get_and_names(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        assert reg.get("alpha") == 1
        assert reg.names() == ["alpha", "beta"]
        assert "alpha" in reg and len(reg) == 2
        assert dict(reg.entries) == {"alpha": 1, "beta": 2}

    def test_lookup_normalises_case_and_whitespace(self):
        reg = Registry("widget")
        reg.register("Alpha", 1)
        assert reg.get("  alpha ") == 1

    def test_duplicate_name_is_refused(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("alpha", 2)
        # The original binding survives the failed attempt.
        assert reg.get("alpha") == 1

    def test_blank_name_is_refused(self):
        reg = Registry("widget")
        with pytest.raises(ConfigurationError):
            reg.register("   ", 1)

    def test_unknown_name_lists_registered(self):
        reg = Registry("widget")
        reg.register("beta", 2)
        reg.register("alpha", 1)
        with pytest.raises(
            ConfigurationError, match=r"\['alpha', 'beta'\]"
        ) as excinfo:
            reg.get("gamma")
        assert "unknown widget 'gamma'" in str(excinfo.value)


class TestModelRegistry:
    def test_all_four_models_registered(self):
        for name in ("lem", "aco", "random", "greedy"):
            assert name in MODEL_PARAMS

    def test_build_model_dispatches_by_params_name(self):
        for name in ("lem", "aco", "random", "greedy"):
            model = build_model(params_from_name(name))
            assert model.params.model_name == name

    def test_unknown_model_is_configuration_error_not_typeerror(self):
        class FakeParams:
            model_name = "boids"

        with pytest.raises(ConfigurationError, match="boids"):
            build_model(FakeParams())

    def test_params_from_dict_unknown_model_lists_names(self):
        with pytest.raises(ConfigurationError, match="registered"):
            params_from_dict({"model_name": "boids"})

    def test_params_from_dict_bad_field_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            params_from_dict({"model_name": "lem", "no_such_knob": 3})


def _cfg(**kw):
    base = dict(height=18, width=12, n_per_side=10, steps=24, seed=3)
    base.update(kw)
    return SimulationConfig(**base)


class TestHookConfig:
    def test_panic_hook_registered(self):
        assert "panic" in HOOKS

    def test_negative_trigger_refused(self):
        with pytest.raises(ConfigurationError):
            _cfg(hooks=(PanicHook(trigger_step=-1),))

    def test_plain_config_wire_format_unchanged(self):
        # Pre-framework digests must not move: a config without
        # components emits neither key.
        out = _cfg().to_dict()
        assert "hooks" not in out and "scenario" not in out

    def test_hooked_config_round_trips_and_changes_digest(self):
        plain = _cfg()
        hooked = plain.replace(hooks=(PanicHook(trigger_step=7),))
        assert config_digest(hooked) != config_digest(plain)
        back = SimulationConfig.from_dict(hooked.to_dict())
        assert back == hooked
        assert config_digest(back) == config_digest(hooked)

    def test_hook_dict_round_trip(self):
        hook = PanicHook(
            trigger_step=4, panic_params=panic_variant(params_from_name("aco"))
        )
        assert hook_from_dict(hook.to_dict()) == hook

    def test_unknown_hook_kind_listed(self):
        with pytest.raises(ConfigurationError, match="registered"):
            hook_from_dict({"kind": "teleport"})

    def test_panic_variant_requires_panicable_model(self):
        with pytest.raises(ConfigurationError):
            panic_variant(params_from_name("random"))


class TestHookSemantics:
    def test_hook_changes_solo_trajectory(self):
        cfg = _cfg(steps=30).with_model("lem")
        plain = build_engine(cfg, engine="vectorized").run(record_timeline=True)
        hooked = build_engine(
            cfg.replace(hooks=(PanicHook(trigger_step=5),)), engine="vectorized"
        ).run(record_timeline=True)
        assert not np.array_equal(plain.moved_per_step, hooked.moved_per_step)

    def test_sequential_matches_vectorized_with_hook(self):
        cfg = _cfg(steps=30).with_model("aco").replace(
            hooks=(PanicHook(trigger_step=6),)
        )
        seq = build_engine(cfg, engine="sequential").run(record_timeline=True)
        vec = build_engine(cfg, engine="vectorized").run(record_timeline=True)
        assert np.array_equal(seq.moved_per_step, vec.moved_per_step)
        assert seq.throughput_total == vec.throughput_total

    def test_hook_matches_legacy_panic_alarm_callback(self):
        from repro.extensions import PanicAlarm

        for trigger in (0, 1, 11):
            cfg = _cfg(steps=24).with_model("lem")
            alarm = PanicAlarm(trigger_step=trigger)
            legacy = build_engine(cfg, engine="vectorized")
            got_legacy = legacy.run(callback=alarm, record_timeline=True)
            hooked = build_engine(
                cfg.replace(hooks=(PanicHook(trigger_step=trigger),)),
                engine="vectorized",
            )
            got_hook = hooked.run(record_timeline=True)
            assert np.array_equal(
                got_legacy.moved_per_step, got_hook.moved_per_step
            )
            assert legacy.model.params == hooked.model.params

    @pytest.mark.parametrize("model", ["lem", "aco"])
    def test_batched_mixed_hooked_lanes_match_solo(self, model):
        # The regression the framework closes: a hooked lane inside a
        # padded batch next to an unhooked lane must reproduce its solo
        # trajectory bit-for-bit, and must not perturb its neighbour.
        hook = PanicHook(trigger_step=5)
        hooked_cfg = _cfg(steps=20).with_model(model).replace(hooks=(hook,))
        plain_cfg = _cfg(steps=20, n_per_side=8).with_model(model)
        seeds = (3, 4)
        batched = BatchedEngine([hooked_cfg, plain_cfg], seeds)
        got = batched.run(record_timeline=True)
        for lane, cfg in enumerate((hooked_cfg, plain_cfg)):
            solo = build_engine(cfg, engine="vectorized", seed=seeds[lane])
            res = solo.run(record_timeline=True)
            assert np.array_equal(
                got[lane].moved_per_step, res.moved_per_step
            )
            assert got[lane].throughput_total == res.throughput_total

    def test_batched_lane_model_swap_guard(self):
        from repro.errors import EngineError

        cfg = _cfg(steps=10).with_model("lem")
        batched = BatchedEngine(cfg, (0, 1))
        with pytest.raises(EngineError):
            batched.swap_lane_model(0, params_from_name("aco"))


class TestScenarioRegistry:
    def test_families_registered(self):
        for family in ("paper", "boarding", "crossing"):
            assert family in SCENARIOS

    def test_parse_scenario_name(self):
        assert parse_scenario_name("boarding:30x7") == ("boarding", "30x7")
        with pytest.raises(ConfigurationError):
            parse_scenario_name("")

    def test_unknown_family_lists_registered(self):
        with pytest.raises(ConfigurationError, match="boarding"):
            build_scenario("metro:1")

    def test_expand_handles_commas_wildcards_and_dedup(self):
        names = expand_scenarios("crossing:*,crossing:12x12,boarding:12x5")
        assert names[-1] == "boarding:12x5"
        assert len(names) == len(set(names))
        assert all(n.startswith(("crossing:", "boarding:")) for n in names)

    def test_paper_family_preserved(self):
        cfg = build_scenario("paper:2", scale="tiny")
        assert cfg.scenario == "paper:2"
        from repro.experiments.scenarios import scenario_config, scenario_spec

        legacy = scenario_config(scenario_spec(2), model="lem", scale="tiny")
        assert cfg.replace(scenario=None) == legacy

    def test_boarding_geometry(self):
        cfg = build_scenario("boarding:30x7", scale="tiny")
        assert (cfg.height, cfg.width) == (38, 7)
        assert cfg.obstacles.kind == "rects"
        aisle = cfg.width // 2
        for top, left, bottom, right in cfg.obstacles.rects:
            assert 0 <= top < bottom <= cfg.height
            assert 0 <= left < right <= cfg.width
            # Seat rows never block the aisle column or the spawn bands.
            assert not (left <= aisle < right)
            assert top >= cfg.band_rows
            assert bottom <= cfg.height - cfg.band_rows

    def test_crossing_geometry(self):
        cfg = build_scenario("crossing:40x40", scale="tiny")
        assert (cfg.height, cfg.width) == (40, 40)
        assert len(cfg.obstacles.rects) == 4
        for top, left, bottom, right in cfg.obstacles.rects:
            assert 0 <= top < bottom <= cfg.height
            assert 0 <= left < right <= cfg.width

    def test_undersized_dims_refused(self):
        with pytest.raises(ConfigurationError):
            build_scenario("boarding:3x3")
        with pytest.raises(ConfigurationError):
            build_scenario("crossing:4x4")
        with pytest.raises(ConfigurationError):
            build_scenario("boarding:7")

    def test_every_registered_variant_builds_and_steps(self):
        for family in SCENARIOS.names():
            for name in expand_scenarios([f"{family}:*"]):
                cfg = build_scenario(name, scale="tiny")
                assert cfg.scenario == name
                eng = build_engine(cfg, engine="vectorized")
                eng.run(steps=3)

    def test_scenario_label_round_trips_through_digest(self):
        a = build_scenario("crossing:12x12", scale="tiny")
        b = build_scenario("crossing:12x12", scale="tiny")
        assert config_digest(a) == config_digest(b)
        back = SimulationConfig.from_dict(a.to_dict())
        assert back.scenario == "crossing:12x12"
        assert config_digest(back) == config_digest(a)
        # The label is part of the identity: same geometry, new name.
        assert config_digest(a) != config_digest(a.replace(scenario=None))

    def test_run_store_keeps_named_label(self, tmp_path):
        store = RunStore(str(tmp_path / "runs.sqlite"))
        named = build_scenario("boarding:12x5", scale="tiny")
        plain = _cfg()
        store.begin_runs(
            [
                ("run-1", named, "vectorized", config_digest(named)),
                ("run-2", plain, "vectorized", config_digest(plain)),
            ]
        )
        rows = {r["run_id"]: r for r in store.runs()}
        assert rows["run-1"]["scenario"] == "boarding:12x5"
        assert rows["run-2"]["scenario"] == f"{plain.height}x{plain.width}"
        assert store.runs(scenario="boarding:12x5")[0]["run_id"] == "run-1"
        store.close()


class TestNamedSweep:
    def test_point_needs_exactly_one_selector(self):
        with pytest.raises(ExperimentError):
            SweepPoint(scenario_index=1, scenario="boarding:12x5")
        with pytest.raises(ExperimentError):
            SweepPoint(scenario_index=0)

    def test_named_points_expand_scenario_major(self):
        pts = named_sweep_points(
            ["crossing:*"], seeds=(0, 1), models=("lem",), scale="tiny"
        )
        assert [p.scenario for p in pts[:2]] == ["crossing:12x12"] * 2
        assert all(p.scenario_index == 0 for p in pts)
        assert {p.seed for p in pts} == {0, 1}

    def test_padded_named_sweep_matches_solo_runs(self):
        pts = named_sweep_points(
            ["boarding:12x5", "crossing:12x12"],
            seeds=(0, 1),
            models=("lem",),
            scale="tiny",
        )
        padded = SweepRunner(max_lanes=4, pad_lanes=True, max_pad_waste=0.9)
        solo = SweepRunner(max_lanes=1)
        key = lambda r: (r.scenario, r.model, r.seed)  # noqa: E731
        got = {key(r): r.throughput for r in padded.run(pts)}
        want = {key(r): r.throughput for r in solo.run(pts)}
        assert got == want
        assert set(got) == {
            ("boarding:12x5", "lem", 0),
            ("boarding:12x5", "lem", 1),
            ("crossing:12x12", "lem", 0),
            ("crossing:12x12", "lem", 1),
        }
