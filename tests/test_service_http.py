"""HTTP front end: submit/status/stats endpoints, bursts, error mapping."""

import json
import urllib.error
import urllib.request

import pytest

from repro import SimulationConfig
from repro.errors import ServiceError
from repro.service import (
    ServiceServer,
    SimulationService,
    get_job,
    get_stats,
    list_jobs,
    submit_jobs,
    wait_for_jobs,
)


def _spec(seed=0, n_per_side=16, steps=30):
    cfg = SimulationConfig(
        height=24, width=24, n_per_side=n_per_side, steps=steps, seed=seed
    )
    return {"config": cfg.to_dict(), "engine": "vectorized"}


@pytest.fixture
def server(tmp_path):
    svc = SimulationService(str(tmp_path))
    srv = ServiceServer(svc, port=0, tick_interval=0.02)
    srv.start()
    yield srv
    srv.shutdown()


class TestEndpoints:
    def test_submit_burst_runs_in_one_batch(self, server):
        port = server.port
        jobs = submit_jobs([_spec(seed=s) for s in range(4)], port=port)
        assert len(jobs) == 4
        assert all(j["state"] == "queued" for j in jobs)
        done = wait_for_jobs([j["job_id"] for j in jobs], port=port, timeout=60)
        assert all(j["state"] == "done" for j in done.values())
        assert all(
            j["result"]["throughput_total"] >= 0 for j in done.values()
        )
        stats = get_stats(port=port)
        assert stats["engine_launches"] < 4
        assert stats["multi_lane_batches"] >= 1

    def test_duplicate_submission_is_cache_hit(self, server):
        port = server.port
        (first,) = submit_jobs([_spec(seed=9)], port=port)
        wait_for_jobs([first["job_id"]], port=port, timeout=60)
        (second,) = submit_jobs([_spec(seed=9)], port=port)
        assert second["digest"] == first["digest"]
        done = wait_for_jobs([second["job_id"]], port=port, timeout=60)
        job = done[second["job_id"]]
        assert job["cache_hit"] is True
        assert get_stats(port=port)["cache_hits"] >= 1

    def test_job_listing_and_lookup(self, server):
        port = server.port
        (job,) = submit_jobs([_spec(seed=2)], port=port)
        listed = list_jobs(port=port)
        assert any(j["job_id"] == job["job_id"] for j in listed)
        wait_for_jobs([job["job_id"]], port=port, timeout=60)
        back = get_job(job["job_id"], port=port)
        assert back["state"] == "done"
        assert back["config"]["seed"] == 2

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServiceError, match="404"):
            get_job("job-424242", port=server.port)

    def test_bad_config_is_400(self, server):
        with pytest.raises(ServiceError, match="400"):
            submit_jobs(
                [{"config": {"height": 24, "nonsense_field": 1}}],
                port=server.port,
            )

    def test_unknown_model_is_400_not_500(self, server):
        # The registry turns the old bare TypeError into a
        # ConfigurationError, which the HTTP layer maps to a client error.
        spec = _spec(seed=3)
        spec["config"]["params"]["model_name"] = "boids"
        with pytest.raises(ServiceError, match="400") as excinfo:
            submit_jobs([spec], port=server.port)
        assert "boids" in str(excinfo.value)

    def test_scenario_travels_the_job_wire(self, server):
        from repro.components.scenarios import build_scenario

        cfg = build_scenario("crossing:12x12", scale="tiny")
        (job,) = submit_jobs(
            [{"config": cfg.to_dict(), "engine": "vectorized"}],
            port=server.port,
        )
        assert job["scenario"] == "crossing:12x12"
        done = wait_for_jobs([job["job_id"]], port=server.port, timeout=60)
        back = done[job["job_id"]]
        assert back["scenario"] == "crossing:12x12"
        assert back["config"]["scenario"] == "crossing:12x12"
        plain = submit_jobs([_spec(seed=8)], port=server.port)
        assert plain[0]["scenario"] is None

    def test_bad_json_body_is_400(self, server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5)
        assert excinfo.value.code == 400

    def test_healthz_and_unknown_route(self, server):
        port = server.port
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=5
        ) as resp:
            assert json.loads(resp.read()) == {"ok": True}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_connection_refused_maps_to_service_error(self):
        with pytest.raises(ServiceError):
            get_stats(port=1, timeout=1)

    def test_priority_and_deadline_travel_the_wire(self, server):
        port = server.port
        spec = dict(_spec(seed=5), priority=3, deadline_s=2.5)
        (job,) = submit_jobs([spec], port=port)
        assert job["priority"] == 3
        assert job["deadline_s"] == 2.5
        done = wait_for_jobs([job["job_id"]], port=port, timeout=60)
        assert done[job["job_id"]]["priority"] == 3

    def test_bad_priority_is_400(self, server):
        with pytest.raises(ServiceError, match="400"):
            submit_jobs(
                [dict(_spec(seed=1), priority="high")], port=server.port
            )
        with pytest.raises(ServiceError, match="400"):
            submit_jobs(
                [dict(_spec(seed=1), deadline_s="soon")], port=server.port
            )

    def test_stats_report_workers_and_cache_budget_fields(self, server):
        stats = get_stats(port=server.port)
        assert stats["workers"] == 1
        assert "peak_concurrent_launches" in stats
        assert "cache_bytes" in stats and "cache_evictions" in stats


class TestMultiWorkerServer:
    def test_mixed_burst_resolves_concurrently(self, tmp_path):
        svc = SimulationService(str(tmp_path), workers=2)
        srv = ServiceServer(svc, port=0, tick_interval=0.02)
        srv.start()
        try:
            port = srv.port
            # One atomic POST whose specs cannot fuse into one launch
            # (two models): the tick dispatches >= 2 launches onto the
            # 2-worker pool at once.
            specs = [_spec(seed=s) for s in range(2)]
            aco = SimulationConfig(
                height=24, width=24, n_per_side=16, steps=30, seed=0
            ).with_model("aco")
            specs.append({"config": aco.to_dict(), "engine": "vectorized"})
            jobs = submit_jobs(specs, port=port)
            done = wait_for_jobs(
                [j["job_id"] for j in jobs], port=port, timeout=120
            )
            assert all(j["state"] == "done" for j in done.values())
            stats = get_stats(port=port)
            assert stats["workers"] == 2
            assert stats["peak_concurrent_launches"] >= 2
        finally:
            srv.shutdown()


class TestShutdown:
    def test_shutdown_is_idempotent(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        srv = ServiceServer(svc, port=0, tick_interval=0.02)
        srv.start()
        srv.shutdown()
        srv.shutdown()

    def test_rejects_nonpositive_tick(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        with pytest.raises(ServiceError):
            ServiceServer(svc, port=0, tick_interval=0.0)

    def test_taken_port_raises_service_error(self, tmp_path, server):
        # Binding the port the fixture server already holds must surface
        # as the clean ServiceError path (CLI exit 2), not a raw OSError.
        svc = SimulationService(str(tmp_path / "other"))
        with pytest.raises(ServiceError, match="cannot bind"):
            ServiceServer(svc, port=server.port)
