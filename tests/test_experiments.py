"""Experiment harness tests (scenarios, figure drivers, tables)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    AGENT_INCREMENT,
    FIG6A_SCENARIOS,
    FIG6B_SCENARIOS,
    SCALES,
    ScenarioSpec,
    measured_fig5,
    measured_speedups,
    modelled_fig5,
    occupancy_table,
    paper_scenarios,
    run_fig6a,
    run_fig6b,
    scenario_config,
    table1_hardware,
)


class TestScenarios:
    def test_paper_sweep(self):
        scenarios = paper_scenarios()
        assert len(scenarios) == 40
        assert scenarios[0].total_agents == 2560
        assert scenarios[-1].total_agents == 102400
        assert all(
            s.total_agents == AGENT_INCREMENT * s.index for s in scenarios
        )

    def test_fig6_windows(self):
        assert FIG6A_SCENARIOS == tuple(range(1, 21))
        assert FIG6B_SCENARIOS == tuple(range(11, 31))

    def test_density_formula(self):
        assert ScenarioSpec(20, 51200).density == pytest.approx(51200 / 230400)

    def test_count_validation(self):
        with pytest.raises(ExperimentError):
            paper_scenarios(0)
        with pytest.raises(ExperimentError):
            paper_scenarios(41)

    def test_scenario_config_scales_density(self):
        spec = ScenarioSpec(10, 25600)
        cfg = scenario_config(spec, model="aco", scale="quick", seed=3)
        assert cfg.model_name == "aco"
        assert cfg.seed == 3
        assert cfg.density == pytest.approx(spec.density, rel=0.05)

    def test_paper_scale_identity(self):
        spec = ScenarioSpec(1, 2560)
        cfg = scenario_config(spec, scale="paper")
        assert (cfg.height, cfg.steps) == (480, 25000)

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            scenario_config(ScenarioSpec(1, 2560), scale="huge")

    def test_scales_registry(self):
        assert {"paper", "standard", "quick", "tiny"} <= set(SCALES)


class TestModelledFig5:
    def test_full_sweep_rows(self):
        rows = modelled_fig5()
        assert len(rows) == 40
        assert rows[0].speedup == pytest.approx(17.95, abs=0.3)
        assert rows[-1].speedup == pytest.approx(11.44, abs=0.3)

    def test_aco_over_lem(self):
        rows = modelled_fig5([2560])
        assert rows[0].aco_over_lem == pytest.approx(1.11, rel=0.01)

    def test_endpoint_seconds(self):
        rows = modelled_fig5([2560, 102400])
        assert rows[0].aco_gpu_seconds == pytest.approx(46.66, rel=1e-6)
        assert rows[0].aco_cpu_seconds == pytest.approx(837.5, rel=1e-6)
        assert rows[1].aco_gpu_seconds == pytest.approx(126.7, rel=1e-6)
        assert rows[1].aco_cpu_seconds == pytest.approx(1449.0, rel=1e-6)


class TestMeasuredFig5:
    def test_records_and_speedups(self):
        records = measured_fig5(scenario_indices=(1, 3), scale="tiny", steps=30)
        # 3 records per scenario: lem/vec, aco/vec, aco/seq.
        assert len(records) == 6
        assert all(r.wall_seconds > 0 for r in records)
        speedups = measured_speedups(records)
        assert len(speedups) == 2
        assert all(s > 0 for _, s in speedups)


class TestFig6aQuick:
    def test_structure_and_shape(self):
        out = run_fig6a(scale="tiny", scenario_indices=(1, 10, 16), seeds=(0,))
        assert [r.scenario_index for r in out.rows] == [1, 10, 16]
        # Low density: both models cross everyone.
        first = out.rows[0]
        assert first.lem_throughput == first.total_agents
        assert first.aco_throughput == first.total_agents
        # Tiny grids are too small for the jamming contrast; just require
        # the totals to be sane (the standard-scale shape test lives in the
        # benchmarks and EXPERIMENTS.md run).
        assert out.overall_gain >= -0.05


class TestFig6bQuick:
    def test_platform_statistics(self):
        # Transitional-density scenarios so the quasi-binomial dispersion is
        # identifiable (all-crossed scenarios carry no variance information).
        out = run_fig6b(
            scale="tiny",
            scenario_indices=(14, 16, 18, 20, 22),
            seeds_cpu=(100, 101, 102),
            seeds_gpu=(200, 201, 202),
        )
        assert len(out.rows) == 5
        assert out.glm.converged
        assert 0.0 <= out.platform_p <= 1.0
        # The reproduction claim: platforms statistically indistinguishable.
        assert out.platforms_equivalent
        assert out.welch_p > 0.05


class TestTables:
    def test_table1_contains_paper_values(self):
        table = table1_hardware()
        for fragment in ("448", "GTX 560 Ti", "i7-930", "2.8", "1.464", "6 GB DDR3"):
            assert fragment in table

    def test_occupancy_table_all_full(self):
        table = occupancy_table()
        assert table.count("100%") == 4
