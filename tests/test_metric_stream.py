"""Metric streaming: emitters, exec wiring, and bit-identity.

The load-bearing property: attaching a metric stream to a launch is
*observation only* — the streamed per-step columns equal the timelines a
recording run produces, and the run results themselves are unchanged.
"""

import pytest

from repro.analytics import MetricStream, MetricStreamSpec, RunStore
from repro.exec import LaunchWork, execute_launch
from repro.metrics import StepMetrics, gridlock_fraction, step_metrics


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "metrics.sqlite")


class TestStepMetrics:
    def test_gridlock_fraction_bounds(self):
        assert gridlock_fraction(0, 100) == 1.0
        assert gridlock_fraction(100, 100) == 0.0
        assert gridlock_fraction(25, 100) == pytest.approx(0.75)
        assert gridlock_fraction(0, 0) == 0.0  # empty population: no gridlock

    def test_step_metrics_without_mat_skips_lane_index(self):
        rec = step_metrics("r", 3, 10, 2, 5, 40)
        assert rec.lane_index is None
        assert rec.gridlock_fraction == pytest.approx(0.75)

    def test_row_and_dict_shapes_agree(self):
        rec = StepMetrics("r", 1, 2, 3, 4, 0.5, 0.25)
        assert rec.to_row() == ("r", 1, 2, 3, 4, 0.5, 0.25, None)
        assert rec.to_dict()["crossed_total"] == 4
        assert set(rec.to_dict()) == {
            "run_id", "step", "moved", "new_crossings", "crossed_total",
            "gridlock_fraction", "lane_index", "dispatch_ops",
        }

    def test_dispatch_ops_passthrough(self):
        assert step_metrics("r", 0, 1, 0, 0, 4).dispatch_ops is None
        assert step_metrics("r", 0, 1, 0, 0, 4, dispatch_ops=68).dispatch_ops == 68


class TestSpecValidation:
    def test_flush_every_must_be_positive(self, db_path):
        with pytest.raises(ValueError, match="flush_every"):
            MetricStreamSpec(db_path=db_path, run_ids=("r",), flush_every=0)

    def test_lane_index_every_must_be_non_negative(self, db_path):
        with pytest.raises(ValueError, match="lane_index_every"):
            MetricStreamSpec(
                db_path=db_path, run_ids=("r",), lane_index_every=-1
            )

    def test_stream_needs_one_run_id_per_lane(self, db_path, tiny_config):
        spec = MetricStreamSpec(db_path=db_path, run_ids=("a", "b"))
        with pytest.raises(ValueError, match="one run id per lane"):
            MetricStream(spec, [tiny_config])

    def test_spec_pickles(self, db_path):
        import pickle

        spec = MetricStreamSpec(db_path=db_path, run_ids=("a", "b"))
        assert pickle.loads(pickle.dumps(spec)) == spec


def _begin(db_path, configs, run_ids):
    store = RunStore(db_path)
    store.begin_runs(
        [(rid, cfg, "vectorized", f"dg-{rid}") for rid, cfg in zip(run_ids, configs)]
    )
    return store


class TestExecuteLaunchStreaming:
    def test_solo_launch_streams_exact_timelines(self, db_path, tiny_config):
        ids = ("solo-a", "solo-b")
        configs = (tiny_config, tiny_config.replace(seed=11))
        store = _begin(db_path, configs, ids)
        out = execute_launch(
            LaunchWork(
                configs=configs,
                record_timeline=True,
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        for rid, cfg, res in zip(ids, configs, out.results):
            rows = store.metrics(rid)
            assert [r["step"] for r in rows] == list(range(cfg.steps))
            # Streamed columns == recorded timelines, element for element.
            assert [r["moved"] for r in rows] == list(res.moved_per_step)
            assert [r["new_crossings"] for r in rows] == list(
                res.crossings_per_step
            )
            assert rows[-1]["crossed_total"] == res.throughput_total
            assert all(r["lane_index"] is not None for r in rows)
        store.close()

    def test_batched_mixed_launch_streams_exact_timelines(
        self, db_path, tiny_config, small_config
    ):
        # Padded heterogeneous lanes: different grids and populations in
        # one batched launch, each lane streaming under its own run id.
        ids = ("lane-tiny", "lane-small")
        configs = (tiny_config, small_config.replace(steps=tiny_config.steps))
        store = _begin(db_path, configs, ids)
        out = execute_launch(
            LaunchWork(
                configs=configs,
                batched=True,
                mixed=True,
                record_timeline=True,
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        for rid, res in zip(ids, out.results):
            rows = store.metrics(rid)
            assert [r["moved"] for r in rows] == list(res.moved_per_step)
            assert [r["new_crossings"] for r in rows] == list(
                res.crossings_per_step
            )
            assert rows[-1]["crossed_total"] == res.throughput_total
        store.close()

    def test_streaming_does_not_change_results(self, db_path, tiny_config):
        # Bit-identity: the exact acceptance criterion. Same work item
        # with and without a metric stream -> equal results.
        ids = ("bit-a", "bit-b")
        configs = (tiny_config, tiny_config.replace(seed=5))
        store = _begin(db_path, configs, ids)
        store.close()
        streamed = execute_launch(
            LaunchWork(
                configs=configs,
                batched=True,
                record_timeline=True,
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        plain = execute_launch(
            LaunchWork(configs=configs, batched=True, record_timeline=True)
        )
        for got, want in zip(streamed.results, plain.results):
            assert got.throughput_total == want.throughput_total
            assert got.throughput_top == want.throughput_top
            assert got.throughput_bottom == want.throughput_bottom
            assert list(got.moved_per_step) == list(want.moved_per_step)
            assert list(got.crossings_per_step) == list(want.crossings_per_step)

    def test_lane_index_sampling_thinned(self, db_path, tiny_config):
        ids = ("thin",)
        store = _begin(db_path, (tiny_config,), ids)
        execute_launch(
            LaunchWork(
                configs=(tiny_config,),
                metrics=MetricStreamSpec(
                    db_path=db_path, run_ids=ids, lane_index_every=5
                ),
            )
        )
        rows = store.metrics("thin")
        for r in rows:
            if r["step"] % 5 == 0:
                assert r["lane_index"] is not None
            else:
                assert r["lane_index"] is None
        store.close()

    def test_lane_index_disabled(self, db_path, tiny_config):
        ids = ("off",)
        store = _begin(db_path, (tiny_config,), ids)
        execute_launch(
            LaunchWork(
                configs=(tiny_config,),
                metrics=MetricStreamSpec(
                    db_path=db_path, run_ids=ids, lane_index_every=0
                ),
            )
        )
        assert all(r["lane_index"] is None for r in store.metrics("off"))
        store.close()

    def test_dispatch_ops_null_on_ordinary_backends(self, db_path, tiny_config):
        ids = ("plain",)
        store = _begin(db_path, (tiny_config,), ids)
        execute_launch(
            LaunchWork(
                configs=(tiny_config,),
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        rows = store.metrics("plain")
        assert rows and all(r["dispatch_ops"] is None for r in rows)
        store.close()

    def test_dispatch_ops_streamed_per_step_on_counting_backend(
        self, db_path, tiny_config
    ):
        cfg = tiny_config.replace(backend="profile:numpy")
        ids = ("prof",)
        store = _begin(db_path, (cfg,), ids)
        execute_launch(
            LaunchWork(
                configs=(cfg,),
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        rows = store.metrics("prof")
        assert len(rows) == cfg.steps
        # run_simulation resets the counters at the run-loop boundary, so
        # every delta — including step 0 — covers exactly one step and
        # excludes construction-time dispatches.
        assert all(isinstance(r["dispatch_ops"], int) for r in rows)
        assert all(r["dispatch_ops"] > 0 for r in rows)
        first, rest = rows[0]["dispatch_ops"], rows[1:]
        assert first <= 3 * max(r["dispatch_ops"] for r in rest)
        store.close()

    def test_dispatch_ops_shared_across_batched_lanes(self, db_path, tiny_config):
        # Lanes of a batch share one fused dispatch sequence; every
        # lane's record carries the batch's per-step count.
        cfg = tiny_config.replace(backend="profile:numpy")
        configs = (cfg, cfg.replace(seed=9))
        ids = ("bl-a", "bl-b")
        store = _begin(db_path, configs, ids)
        execute_launch(
            LaunchWork(
                configs=configs,
                batched=True,
                metrics=MetricStreamSpec(db_path=db_path, run_ids=ids),
            )
        )
        rows_a = store.metrics("bl-a")
        rows_b = store.metrics("bl-b")
        assert [r["dispatch_ops"] for r in rows_a] == [
            r["dispatch_ops"] for r in rows_b
        ]
        assert all(r["dispatch_ops"] > 0 for r in rows_a)
        store.close()

    def test_small_flush_batches_equal_large(self, db_path, tiny_config):
        # flush_every is a pure batching knob: row content is identical.
        for rid, flush in (("f1", 1), ("f64", 64)):
            store = _begin(db_path, (tiny_config,), (rid,))
            store.close()
            execute_launch(
                LaunchWork(
                    configs=(tiny_config,),
                    metrics=MetricStreamSpec(
                        db_path=db_path, run_ids=(rid,), flush_every=flush
                    ),
                )
            )
        store = RunStore(db_path)
        a = [
            tuple(v for k, v in sorted(r.items()) if k != "run_id")
            for r in store.metrics("f1")
        ]
        b = [
            tuple(v for k, v in sorted(r.items()) if k != "run_id")
            for r in store.metrics("f64")
        ]
        assert a == b
        store.close()
