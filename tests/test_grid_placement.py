"""Placement tests: random but confined, deterministic, paper-indexed."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.grid import band_cells, place_groups
from repro.rng import PhiloxKeyedRNG
from repro.types import Group


class TestBandCells:
    def test_top_band(self):
        cells = band_cells(20, 10, Group.TOP, 3)
        assert cells.shape == (30, 2)
        assert cells[:, 0].min() == 0 and cells[:, 0].max() == 2

    def test_bottom_band(self):
        cells = band_cells(20, 10, Group.BOTTOM, 3)
        assert cells[:, 0].min() == 17 and cells[:, 0].max() == 19

    def test_row_major_order(self):
        cells = band_cells(20, 4, Group.TOP, 2)
        lanes = cells[:, 0] * 4 + cells[:, 1]
        assert np.all(np.diff(lanes) > 0)

    def test_band_validation(self):
        with pytest.raises(ValueError):
            band_cells(20, 10, Group.TOP, 0)
        with pytest.raises(ValueError):
            band_cells(20, 10, Group.TOP, 21)


class TestPlaceGroups:
    def test_counts_and_confinement(self, rng):
        env = place_groups(40, 20, 50, 5, rng)
        assert env.count(Group.TOP) == 50
        assert env.count(Group.BOTTOM) == 50
        top_rows = np.nonzero(env.mat == int(Group.TOP))[0]
        bottom_rows = np.nonzero(env.mat == int(Group.BOTTOM))[0]
        assert top_rows.max() < 5
        assert bottom_rows.min() >= 35

    def test_index_numbering_matches_paper(self, rng):
        """Top agents 1..n in reading order, bottom agents follow."""
        env = place_groups(20, 10, 15, 3, rng)
        top_idx = env.index[env.mat == int(Group.TOP)]
        bottom_idx = env.index[env.mat == int(Group.BOTTOM)]
        assert set(top_idx) == set(range(1, 16))
        assert set(bottom_idx) == set(range(16, 31))
        # Reading order: index increases along row-major occupied cells.
        rows, cols = np.nonzero(env.mat == int(Group.TOP))
        assert np.all(np.diff(env.index[rows, cols]) > 0)

    def test_deterministic_per_seed(self):
        a = place_groups(20, 10, 15, 3, PhiloxKeyedRNG(5))
        b = place_groups(20, 10, 15, 3, PhiloxKeyedRNG(5))
        assert a.equals(b)

    def test_seed_changes_layout(self):
        a = place_groups(20, 16, 30, 4, PhiloxKeyedRNG(5))
        b = place_groups(20, 16, 30, 4, PhiloxKeyedRNG(6))
        assert not a.equals(b)

    def test_full_band(self, rng):
        """Exactly filling the band must work."""
        env = place_groups(10, 6, 12, 2, rng)
        assert env.count(Group.TOP) == 12

    def test_overfull_band_raises(self, rng):
        with pytest.raises(PlacementError):
            place_groups(10, 6, 13, 2, rng)

    def test_validated_environment(self, rng):
        env = place_groups(20, 20, 40, 4, rng)
        env.validate()

    def test_placement_is_uniformish(self):
        """Each band cell should win roughly equally often across seeds."""
        hits = np.zeros((2, 8))
        for seed in range(300):
            env = place_groups(10, 8, 8, 2, PhiloxKeyedRNG(seed))
            hits += env.mat[:2] == int(Group.TOP)
        freq = hits / 300.0
        assert abs(freq.mean() - 0.5) < 0.05
        assert freq.std() < 0.12
