"""Simulation driver / registry tests."""

import numpy as np
import pytest

from repro import EngineError, SimulationConfig, build_engine, run_simulation
from repro.engine import available_engines


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(available_engines()) == {"sequential", "vectorized", "tiled"}

    def test_unknown_engine(self, small_config):
        with pytest.raises(EngineError, match="unknown engine"):
            build_engine(small_config, "quantum")

    def test_platform_tags(self, small_config):
        for name, cls in available_engines().items():
            assert cls.platform == name


class TestRun:
    def test_run_respects_step_budget(self, small_config):
        out = run_simulation(small_config, steps=10)
        assert out.result.steps_run == 10
        assert out.result.moved_per_step.shape == (10,)

    def test_run_uses_config_steps_by_default(self, tiny_config):
        out = run_simulation(tiny_config)
        assert out.result.steps_run == tiny_config.steps

    def test_timeline_disabled(self, tiny_config):
        out = run_simulation(tiny_config, record_timeline=False)
        assert out.result.moved_per_step is None

    def test_callback_invoked(self, tiny_config):
        seen = []
        run_simulation(tiny_config, callback=lambda e, r: seen.append(r.step))
        assert seen == list(range(tiny_config.steps))

    def test_throughput_split_consistent(self, small_config):
        out = run_simulation(small_config, steps=40)
        r = out.result
        assert r.throughput_total == r.throughput_top + r.throughput_bottom

    def test_crossings_timeline_sums_to_total(self, small_config):
        out = run_simulation(small_config, steps=40)
        assert out.result.crossings_per_step.sum() == out.result.throughput_total

    def test_wall_time_positive(self, tiny_config):
        out = run_simulation(tiny_config)
        assert out.wall_seconds > 0
        assert out.seconds_per_step > 0

    def test_seed_override(self, tiny_config):
        a = run_simulation(tiny_config, seed=1, steps=15)
        b = run_simulation(tiny_config, seed=1, steps=15)
        c = run_simulation(tiny_config, seed=2, steps=15)
        assert np.array_equal(a.result.moved_per_step, b.result.moved_per_step)
        # Different seeds essentially never produce identical move series.
        assert not np.array_equal(a.result.moved_per_step, c.result.moved_per_step)


class TestCrossingBehaviour:
    def test_low_density_everyone_crosses(self):
        cfg = SimulationConfig(height=32, width=32, n_per_side=30, steps=200, seed=1)
        out = run_simulation(cfg)
        assert out.result.throughput_total == 60

    def test_zero_steps(self, tiny_config):
        out = run_simulation(tiny_config, steps=0)
        assert out.result.steps_run == 0
        assert out.result.throughput_total == 0
