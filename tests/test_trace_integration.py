"""End-to-end tracing: exec boundary, service span trees, HTTP, CLI.

The contracts PR 9 must not regress:

* launch spans survive the forkserver boundary bit-for-bit (pool and
  inline executions produce the same span structure);
* tracing never perturbs a trajectory (traced == untraced results);
* a crashed worker leaves a *closed* trace — the torn launch phases
  are stood in for by one error span, never dangling open spans;
* every finished job serves a span tree whose phases sum to roughly
  the end-to-end duration;
* deadline misses are visible on the job wire and in ``/stats``;
* the analytics store migrates v3 → v4 in place and persists spans;
* ``GET /metrics`` and ``GET /jobs/<id>/trace`` speak the documented
  protocol (Prometheus text, 404/409 mapping);
* borrowed executor pools account concurrency per owner.
"""

import json
import os
import signal
import sqlite3
import time
import urllib.request

import pytest

from repro import SimulationConfig, run_simulation
from repro.analytics import SCHEMA_VERSION, RunStore
from repro.cli import main as cli_main
from repro.errors import ServiceError
from repro.exec import ExecutorPool, LaunchWork, execute_launch
from repro.obs import PHASES, ROOT_SPAN, TraceSpec, Tracer
from repro.service import (
    ServiceServer,
    SimulationService,
    get_job_trace,
    get_metrics_text,
    submit_jobs,
    wait_for_jobs,
)
import repro.service.scheduler as scheduler_mod


def _cfg(seed=0, n_per_side=16, steps=30, **kw):
    kw.setdefault("height", 24)
    kw.setdefault("width", 24)
    return SimulationConfig(n_per_side=n_per_side, steps=steps, seed=seed, **kw)


def _traced_work(configs, **kw):
    return LaunchWork(
        configs=configs, trace=TraceSpec(dispatched_unix=time.time()), **kw
    )


#: Step marker that makes `_crashing_execute_launch` SIGKILL its worker.
_CRASH_STEPS = 13


def _crashing_execute_launch(work):
    """Module-level (picklable) launch executor that dies for marked configs."""
    if any(c.steps == _CRASH_STEPS for c in work.configs):
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_launch(work)


def _hold(tag, barrier_ignored, delay):
    """Module-level sleeper for pool concurrency tests."""
    time.sleep(delay)
    return tag


class TestExecuteLaunchSpans:
    def test_solo_launch_phases(self):
        outcome = execute_launch(_traced_work((_cfg(),)))
        names = [s["name"] for s in outcome.spans]
        assert names == ["dispatch", "warm_backend", "engine.run", "to_host"]
        assert all(s["status"] == "ok" for s in outcome.spans)
        assert all(s["duration_s"] is not None for s in outcome.spans)
        run = next(s for s in outcome.spans if s["name"] == "engine.run")
        assert run["attrs"]["steps"] == _cfg().steps

    def test_batched_launch_reports_lanes(self):
        cfgs = tuple(_cfg(seed=s) for s in range(2))
        outcome = execute_launch(_traced_work(cfgs, batched=True))
        run = next(s for s in outcome.spans if s["name"] == "engine.run")
        assert run["attrs"]["lanes"] == 2

    def test_untraced_work_ships_no_spans(self):
        assert execute_launch(LaunchWork(configs=(_cfg(),))).spans == ()

    def test_phase_names_are_canonical(self):
        outcome = execute_launch(_traced_work((_cfg(),)))
        assert all(s["name"] in PHASES for s in outcome.spans)

    def test_tracing_is_bit_identical(self):
        traced = execute_launch(
            _traced_work((_cfg(seed=5),), record_timeline=True)
        )
        plain = execute_launch(
            LaunchWork(configs=(_cfg(seed=5),), record_timeline=True)
        )
        assert (
            traced.results[0].throughput_total
            == plain.results[0].throughput_total
        )
        import numpy as np

        assert np.array_equal(
            traced.results[0].moved_per_step, plain.results[0].moved_per_step
        )


class TestForkserverParity:
    def test_pool_and_inline_span_structure_match(self):
        work = _traced_work((_cfg(seed=2),))
        inline = execute_launch(work)
        with ExecutorPool(1) as pool:
            pooled = pool.submit(execute_launch, work).result(timeout=120)
        shape = lambda o: [(s["name"], s["status"]) for s in o.spans]
        assert shape(pooled) == shape(inline)
        # And the payload itself crossed the boundary unscathed.
        assert (
            pooled.results[0].throughput_total
            == inline.results[0].throughput_total
        )


class TestRunSimulationTracer:
    def test_tracer_does_not_perturb_the_run(self):
        cfg = _cfg(seed=7, steps=25)
        tracer = Tracer()
        traced = run_simulation(cfg, tracer=tracer)
        plain = run_simulation(cfg)
        assert traced.result.throughput_total == plain.result.throughput_total
        import numpy as np

        assert np.array_equal(
            traced.result.moved_per_step, plain.result.moved_per_step
        )
        assert any(s.name == "engine.run" for s in tracer.spans)


class TestServiceTraces:
    def test_finished_job_serves_full_span_tree(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        try:
            job = svc.submit(_cfg(seed=1))
            svc.run_until_idle()
            payload = svc.trace_payload(job.job_id)
        finally:
            svc.close()
        assert payload["job_id"] == job.job_id
        assert payload["trace_id"] == job.trace_id
        spans = payload["spans"]
        names = {s["name"] for s in spans}
        assert names == {
            ROOT_SPAN, "queue_wait", "plan", "dispatch",
            "warm_backend", "engine.run", "to_host", "commit",
        }
        assert all(s["trace_id"] == job.trace_id for s in spans)
        root = next(s for s in spans if s["name"] == ROOT_SPAN)
        assert root["status"] == "ok"
        # The phases account for (almost all of) the end-to-end time:
        # only spans parented directly under the root sum cleanly.
        direct = sum(
            s["duration_s"]
            for s in spans
            if s["parent_id"] == root["span_id"] and s["duration_s"]
        )
        assert direct <= root["duration_s"] * 1.05
        assert direct >= root["duration_s"] * 0.5

    def test_cache_hit_gets_minimal_trace(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        try:
            first = svc.submit(_cfg(seed=4))
            svc.run_until_idle()
            hit = svc.submit(_cfg(seed=4))
            svc.run_until_idle()
            payload = svc.trace_payload(hit.job_id)
        finally:
            svc.close()
        root = next(
            s for s in payload["spans"] if s["name"] == ROOT_SPAN
        )
        assert root["attrs"].get("cache_hit") is True
        assert first.job_id != hit.job_id
        # No engine phases: the job never launched.
        assert not any(
            s["name"] == "engine.run" for s in payload["spans"]
        )

    def test_trace_survives_pool_execution(self, tmp_path):
        svc = SimulationService(str(tmp_path), workers=2)
        try:
            jobs = [svc.submit(_cfg(seed=s)) for s in range(2)]
            svc.run_until_idle()
            payloads = [svc.trace_payload(j.job_id) for j in jobs]
        finally:
            svc.close()
        for payload in payloads:
            names = {s["name"] for s in payload["spans"]}
            assert "engine.run" in names and ROOT_SPAN in names

    def test_latency_summary_feeds_stats(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        try:
            for s in range(2):
                svc.submit(_cfg(seed=s))
            svc.run_until_idle()
            stats = svc.stats_dict()
        finally:
            svc.close()
        assert stats["trace"] is True
        e2e = stats["latency"]["end_to_end"]
        assert e2e["count"] == 2
        assert 0 < e2e["p50"] <= e2e["p99"]
        assert "engine.run" in stats["latency"]["phases"]

    def test_tracing_disabled_records_nothing(self, tmp_path):
        svc = SimulationService(str(tmp_path), trace=False)
        try:
            job = svc.submit(_cfg(seed=3))
            svc.run_until_idle()
            assert svc.trace_payload(job.job_id) is None
            assert svc.stats_dict()["latency"]["end_to_end"] is None
        finally:
            svc.close()


class TestCrashTornSpans:
    def test_worker_crash_closes_the_trace_with_error(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            scheduler_mod, "execute_launch", _crashing_execute_launch
        )
        svc = SimulationService(str(tmp_path), workers=2)
        try:
            doomed = svc.submit(_cfg(seed=0, steps=_CRASH_STEPS))
            healthy = svc.submit(_cfg(seed=1))
            svc.run_until_idle()
            doomed_trace = svc.trace_payload(doomed.job_id)
            healthy_trace = svc.trace_payload(healthy.job_id)
        finally:
            svc.close()
        assert doomed_trace["state"] == "failed"
        root = next(
            s for s in doomed_trace["spans"] if s["name"] == ROOT_SPAN
        )
        assert root["status"] == "error"
        assert root["error"]
        # The torn launch is stood in for by a closed error span — a
        # crashed worker must not leave open (duration-less) spans.
        stand_in = next(
            s for s in doomed_trace["spans"] if s["name"] == "engine.run"
        )
        assert stand_in["status"] == "error"
        assert "WorkerCrashError" in stand_in["error"]
        assert all(
            s["duration_s"] is not None for s in doomed_trace["spans"]
        )
        # The crash stayed contained: the sibling job traced cleanly.
        healthy_root = next(
            s for s in healthy_trace["spans"] if s["name"] == ROOT_SPAN
        )
        assert healthy_root["status"] == "ok"


class TestDeadlines:
    def test_missed_deadline_is_reported_not_enforced(self, tmp_path):
        svc = SimulationService(str(tmp_path))
        try:
            job = svc.submit(_cfg(seed=2), deadline_s=0.0)
            on_time = svc.submit(_cfg(seed=3), deadline_s=3600.0)
            svc.run_until_idle()
            job = svc.job(job.job_id)
            on_time = svc.job(on_time.job_id)
            stats = svc.stats_dict()
            trace = svc.trace_payload(job.job_id)
        finally:
            svc.close()
        # Reported: the flag, the wait, the counter, the span attr...
        assert job.deadline_missed is True
        assert job.queue_wait_s > 0.0
        assert on_time.deadline_missed is False
        assert stats["deadline_missed"] == 1
        wait = next(
            s for s in trace["spans"] if s["name"] == "queue_wait"
        )
        assert wait["attrs"].get("deadline_missed") is True
        # ...but never enforced: the job still ran to completion.
        assert job.state.value == "done"


class TestStoreSpans:
    def _begin(self, store, run_id="job-000001"):
        store.begin_run(run_id, _cfg(), "vectorized", "digest-x")
        return run_id

    def _spans(self, trace_id="t" * 32):
        return [
            {
                "span_id": "a" * 16, "trace_id": trace_id, "parent_id": None,
                "name": "job", "start_unix": 10.0, "duration_s": 1.0,
                "status": "ok", "error": None, "attrs": {"engine": "vectorized"},
            },
            {
                "span_id": "b" * 16, "trace_id": trace_id,
                "parent_id": "a" * 16, "name": "engine.run",
                "start_unix": 10.2, "duration_s": 0.7,
                "status": "ok", "error": None, "attrs": {},
            },
        ]

    def test_append_and_read_roundtrip(self, tmp_path):
        store = RunStore(str(tmp_path / "a.sqlite"))
        try:
            run_id = self._begin(store)
            assert store.append_spans(run_id, self._spans()) == 2
            rows = store.spans(run_id)
            assert [r["name"] for r in rows] == ["job", "engine.run"]
            assert rows[0]["attrs"] == {"engine": "vectorized"}
            assert store.counts()["span_rows"] == 2
        finally:
            store.close()

    def test_reexecution_replaces_stale_spans(self, tmp_path):
        store = RunStore(str(tmp_path / "b.sqlite"))
        try:
            run_id = self._begin(store)
            store.append_spans(run_id, self._spans())
            # The job re-executes (service restart): re-beginning the
            # run clears the previous attempt's spans.
            store.begin_runs(
                [(run_id, _cfg(), "vectorized", "digest-x")]
            )
            assert store.spans(run_id) == []
            store.append_spans(run_id, self._spans(trace_id="u" * 32))
            assert {r["trace_id"] for r in store.spans(run_id)} == {"u" * 32}
        finally:
            store.close()

    def test_phase_latency_groups_by_name(self, tmp_path):
        store = RunStore(str(tmp_path / "c.sqlite"))
        try:
            for i in (1, 2):
                run_id = self._begin(store, f"job-00000{i}")
                store.append_spans(run_id, self._spans())
            latency = store.phase_latency()
            assert latency["job"] == [1.0, 1.0]
            assert latency["engine.run"] == [0.7, 0.7]
        finally:
            store.close()

    def test_v3_to_v4_migration(self, tmp_path):
        # A hand-built v3 database: pre-tracing, no spans table.
        db_path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(db_path)
        conn.execute(
            """CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, digest TEXT NOT NULL,
                scenario TEXT NOT NULL, model TEXT NOT NULL,
                engine TEXT NOT NULL, backend TEXT NOT NULL,
                height INTEGER NOT NULL, width INTEGER NOT NULL,
                agents INTEGER NOT NULL, steps INTEGER NOT NULL,
                seed INTEGER NOT NULL,
                status TEXT NOT NULL DEFAULT 'running',
                throughput_total INTEGER, wall_seconds REAL,
                density REAL NOT NULL, flow REAL, created_s REAL NOT NULL
            )"""
        )
        conn.execute(
            """CREATE TABLE metrics (
                run_id TEXT NOT NULL, step INTEGER NOT NULL,
                moved INTEGER NOT NULL, new_crossings INTEGER NOT NULL,
                crossed_total INTEGER NOT NULL,
                gridlock_fraction REAL NOT NULL, lane_index REAL,
                dispatch_ops INTEGER,
                PRIMARY KEY (run_id, step)
            )"""
        )
        conn.execute(
            "INSERT INTO runs VALUES ('old-run', 'd1', '24x24', 'lem', "
            "'vectorized', 'numpy', 24, 24, 32, 30, 0, 'done', "
            "11, 0.5, 0.1, 0.4, 1.0)"
        )
        conn.execute("PRAGMA user_version=3")
        conn.commit()
        conn.close()

        store = RunStore(db_path)
        try:
            assert store.schema_version == SCHEMA_VERSION
            # Pre-migration rows survive; spans start empty and writable.
            assert store.run("old-run")["status"] == "done"
            assert store.spans("old-run") == []
            store.append_spans("old-run", self._spans())
            assert len(store.spans("old-run")) == 2
        finally:
            store.close()


@pytest.fixture
def server(tmp_path):
    svc = SimulationService(str(tmp_path))
    srv = ServiceServer(svc, port=0, tick_interval=0.02)
    srv.start()
    yield srv
    srv.shutdown()


def _spec(seed=0, steps=30):
    return {"config": _cfg(seed=seed, steps=steps).to_dict(),
            "engine": "vectorized"}


class TestHttpSurface:
    def test_metrics_scrape_is_prometheus_text(self, server):
        port = server.port
        (job,) = submit_jobs([_spec(seed=1)], port=port)
        wait_for_jobs([job["job_id"]], port=port, timeout=60)
        text = get_metrics_text(port=port)
        assert "# TYPE repro_job_latency_seconds histogram" in text
        assert 'repro_job_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_jobs_submitted_total 1" in text
        assert (
            'repro_phase_latency_seconds_bucket{phase="engine.run",le="+Inf"}'
            in text
        )
        # Raw text endpoint, not the JSON envelope.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")

    def test_job_trace_endpoint_round_trips(self, server):
        port = server.port
        (job,) = submit_jobs([_spec(seed=2)], port=port)
        wait_for_jobs([job["job_id"]], port=port, timeout=60)
        payload = get_job_trace(job["job_id"], port=port)
        assert payload["job_id"] == job["job_id"]
        assert payload["trace_id"] == job["trace_id"]
        names = {s["name"] for s in payload["spans"]}
        assert {ROOT_SPAN, "queue_wait", "engine.run", "commit"} <= names

    def test_job_wire_carries_queue_wait(self, server):
        port = server.port
        (job,) = submit_jobs([_spec(seed=3)], port=port)
        done = wait_for_jobs([job["job_id"]], port=port, timeout=60)
        wire = done[job["job_id"]]
        assert wire["queue_wait_s"] >= 0.0
        assert wire["deadline_missed"] is False
        assert len(wire["trace_id"]) == 32

    def test_unknown_job_trace_is_404(self, server):
        with pytest.raises(ServiceError, match="404"):
            get_job_trace("job-999999", port=server.port)

    def test_trace_before_execution_is_409(self, tmp_path):
        # A server that never ticks: the job stays queued, so the trace
        # exists-but-isn't-recorded path (409) is reachable.
        svc = SimulationService(str(tmp_path))
        srv = ServiceServer(svc, port=0, tick_interval=3600.0)
        srv.start()
        try:
            (job,) = submit_jobs([_spec(seed=4)], port=srv.port)
            with pytest.raises(ServiceError, match="409"):
                get_job_trace(job["job_id"], port=srv.port)
        finally:
            srv.shutdown()


class TestOwnerScopedPool:
    def test_peak_busy_scopes_per_owner(self):
        with ExecutorPool(3) as pool:
            futures = [
                pool.submit(_hold, i, None, 0.4, owner="tenant-a")
                for i in range(3)
            ]
            for f in futures:
                f.result(timeout=60)
            late = pool.submit(_hold, 9, None, 0.05, owner="tenant-b")
            late.result(timeout=60)
            assert pool.peak_busy_for("tenant-a") == 3
            assert pool.peak_busy_for("tenant-b") == 1
            assert pool.peak_busy_for("never-submitted") == 0
            # The pool-lifetime high-water mark still covers everyone.
            assert pool.peak_busy == 3

    def test_borrowed_pool_does_not_leak_prior_tenant_peak(self, tmp_path):
        pool = ExecutorPool(3)
        try:
            # A prior tenant saturates the shared pool...
            futures = [
                pool.submit(_hold, i, None, 0.4, owner="noisy")
                for i in range(3)
            ]
            for f in futures:
                f.result(timeout=60)
            assert pool.peak_busy_for("noisy") == 3
            # ...then the service borrows it for a two-launch tick. Its
            # reported concurrency must be its own, not the pool's.
            svc = SimulationService(str(tmp_path), executor=pool)
            try:
                svc.submit(_cfg(seed=0), engine="vectorized")
                svc.submit(_cfg(seed=1), engine="sequential")
                svc.run_until_idle()
                stats = svc.stats_dict()
            finally:
                svc.close()
            assert 1 <= stats["peak_concurrent_launches"] <= 2
        finally:
            pool.close()


class TestCliTrace:
    @pytest.fixture
    def analytics_db(self, tmp_path):
        db = str(tmp_path / "analytics.sqlite")
        svc = SimulationService(
            str(tmp_path / "state"), analytics_db=db
        )
        try:
            job = svc.submit(_cfg(seed=6))
            svc.run_until_idle()
        finally:
            svc.close()
        return db, job.job_id

    def test_trace_from_analytics_db(self, analytics_db, capsys):
        db, job_id = analytics_db
        assert cli_main(["trace", job_id, "--db", db]) == 0
        out = capsys.readouterr().out
        assert job_id in out
        assert "engine.run" in out and "└─" in out

    def test_trace_unknown_job_exits_2(self, analytics_db, capsys):
        db, _ = analytics_db
        assert cli_main(["trace", "job-999999", "--db", db]) == 2

    def test_trace_json_output(self, analytics_db, capsys):
        db, job_id = analytics_db
        assert cli_main(["trace", job_id, "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job_id"] == job_id
        assert any(s["name"] == ROOT_SPAN for s in payload["spans"])

    def test_analytics_latency_table(self, analytics_db, capsys):
        db, _ = analytics_db
        assert cli_main(["analytics", "--latency", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "engine.run" in out
        assert "p50" in out and "p99" in out

    def test_run_trace_prints_the_tree(self, capsys):
        code = cli_main([
            "run", "--height", "24", "--width", "24", "--agents", "8",
            "--steps", "5", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.run" in out and "warm_backend" in out
