"""Kernel launch configuration tests."""

import pytest

from repro.cuda import (
    Dim3,
    GTX_560_TI_448,
    agent_kernel_launch,
    cell_kernel_launch,
)
from repro.errors import LaunchConfigError


class TestDim3:
    def test_count(self):
        assert Dim3(16, 16).count == 256
        assert Dim3(5).count == 5

    def test_validation(self):
        with pytest.raises(LaunchConfigError):
            Dim3(0)


class TestCellKernelLaunch:
    def test_paper_grid(self):
        """480x480 with 16x16 tiles: 30x30 blocks of 256 threads."""
        cfg = cell_kernel_launch(480, 480)
        assert cfg.grid.count == 900
        assert cfg.threads_per_block == 256
        assert cfg.total_threads == 480 * 480
        assert cfg.warps_per_block == 8

    def test_requires_multiple_of_tile(self):
        with pytest.raises(LaunchConfigError, match="multiple"):
            cell_kernel_launch(100, 480)

    def test_waves(self):
        cfg = cell_kernel_launch(480, 480)
        # 900 blocks / (14 SMs x 6 blocks) = 11 waves.
        assert cfg.waves(GTX_560_TI_448, active_blocks_per_sm=6) == 11

    def test_waves_validation(self):
        cfg = cell_kernel_launch(32, 32)
        with pytest.raises(LaunchConfigError):
            cfg.waves(GTX_560_TI_448, active_blocks_per_sm=0)


class TestAgentKernelLaunch:
    def test_paper_shape(self):
        """8 slot-threads x 32 agent rows = 256-thread blocks."""
        cfg = agent_kernel_launch(2560)
        assert cfg.threads_per_block == 256
        assert cfg.grid.count == 80
        assert cfg.total_threads == 8 * 32 * 80

    def test_rounds_up_partial_block(self):
        cfg = agent_kernel_launch(33)
        assert cfg.grid.count == 2

    def test_validation(self):
        with pytest.raises(LaunchConfigError):
            agent_kernel_launch(0)

    def test_block_thread_limit_enforced(self):
        with pytest.raises(LaunchConfigError, match="exceeds"):
            agent_kernel_launch(100, slots=64, rows_per_block=32)
