"""Per-step dispatch budgets: the fused kernels must stay fused.

Each engine gets a steady-state namespace-dispatch budget measured on
the PR-8 tree (32x32 grid, 24 agents/side, LEM) with ~20% headroom for
benign drift. Exceeding a budget means a whole-batch launch was split
back into per-group or per-lane passes — the regression this PR exists
to prevent. The ``PRE_FUSION`` constants are the same measurement taken
on the PR-7 tree (per-group TOP/BOTTOM passes, unfused RNG), kept as
fixed reference points so the batched engine's headline criterion — at
least a 40% dispatch cut — is asserted against history, not against a
number that drifts with the code under test.

Only ``xp.*`` namespace calls count (array methods and operator
indexing do not — see ``repro.backend.profiling``), so budgets are a
stable lower bound on real kernel launches.
"""

import pytest

from repro import SimulationConfig
from repro.backend import resolve_backend
from repro.engine import BatchedEngine, build_engine

#: Steady-state ops/step on the PR-7 tree (pre-fusion), same scenario.
PRE_FUSION = {
    "sequential": 47.2,
    "vectorized": 155.0,
    "tiled": 262.0,
    "batched4": 171.0,
    "padded4": 171.6,
}

#: Post-fusion budgets: measured steady-state ops/step plus ~20% headroom.
BUDGETS = {
    "sequential": 22,
    "vectorized": 82,
    "tiled": 220,
    "batched4": 85,
    "padded4": 85,
}

#: The one backend-name string every measurement here resolves: the
#: counting instance is cached per exact name, so the engine and the
#: assertion must agree on it.
PROFILE_NAME = "profile:numpy"

WARMUP_STEPS = 3
MEASURED_STEPS = 5


def _config(seed: int = 0, height: int = 32) -> SimulationConfig:
    return SimulationConfig(
        height=height, width=32, n_per_side=24, steps=40, seed=seed,
        backend=PROFILE_NAME,
    ).with_model("lem")


def _steady_ops_per_step(engine) -> float:
    """Ops/step over MEASURED_STEPS after WARMUP_STEPS of warm-up."""
    backend = engine.backend
    for _ in range(WARMUP_STEPS):
        engine.step()
    backend.reset()
    for _ in range(MEASURED_STEPS):
        engine.step()
    return backend.snapshot().ops / MEASURED_STEPS


def _build(kind: str):
    if kind == "batched4":
        return BatchedEngine(_config(), seeds=(0, 1, 2, 3))
    if kind == "padded4":
        configs = [_config(s, height=32 if s % 2 == 0 else 48) for s in range(4)]
        return BatchedEngine(configs, seeds=tuple(range(4)))
    return build_engine(_config(), engine=kind)


@pytest.mark.parametrize("kind", sorted(BUDGETS))
def test_engine_stays_within_dispatch_budget(kind):
    resolve_backend(PROFILE_NAME).reset()
    ops = _steady_ops_per_step(_build(kind))
    assert ops <= BUDGETS[kind], (
        f"{kind}: {ops:.1f} ops/step exceeds the {BUDGETS[kind]} budget — "
        f"a fused whole-batch launch has likely been split"
    )


def test_batched_dispatch_cut_meets_headline_criterion():
    """PR-8 acceptance: batched per-step dispatches down >= 40% vs PR 7."""
    resolve_backend(PROFILE_NAME).reset()
    ops = _steady_ops_per_step(_build("batched4"))
    assert ops <= 0.6 * PRE_FUSION["batched4"], (
        f"batched engine at {ops:.1f} ops/step is less than a 40% cut from "
        f"the pre-fusion {PRE_FUSION['batched4']} ops/step"
    )


def test_batched_dispatch_independent_of_batch_width():
    """Fused whole-batch launches: ops/step must not scale with lanes.

    This is the structural claim behind batching — B lanes share one
    dispatch sequence. A small fixed allowance covers per-lane host-side
    bookkeeping at the recording boundary.
    """
    resolve_backend(PROFILE_NAME).reset()
    ops2 = _steady_ops_per_step(BatchedEngine(_config(), seeds=(0, 1)))
    resolve_backend(PROFILE_NAME).reset()
    ops8 = _steady_ops_per_step(
        BatchedEngine(_config(), seeds=tuple(range(8)))
    )
    assert ops8 <= ops2 + 5, (
        f"ops/step grew from {ops2:.1f} (B=2) to {ops8:.1f} (B=8): "
        f"per-lane dispatch is leaking back in"
    )


def test_fused_engines_cheaper_than_pre_fusion_everywhere():
    """No engine regressed past its own pre-fusion dispatch count."""
    for kind, pre in PRE_FUSION.items():
        resolve_backend(PROFILE_NAME).reset()
        ops = _steady_ops_per_step(_build(kind))
        assert ops < pre, f"{kind}: {ops:.1f} ops/step >= pre-fusion {pre}"
