"""Environment / index matrix tests."""

import numpy as np
import pytest

from repro.grid import Environment
from repro.types import Group


class TestConstruction:
    def test_starts_empty(self):
        env = Environment(10, 12)
        assert env.shape == (10, 12)
        assert env.n_cells == 120
        assert np.all(env.mat == 0)
        assert np.all(env.index == 0)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            Environment(0, 5)


class TestPlacement:
    def test_place_and_query(self):
        env = Environment(8, 8)
        env.place(2, 3, int(Group.TOP), 1)
        assert not env.is_empty(2, 3)
        assert env.count(Group.TOP) == 1
        assert env.index[2, 3] == 1

    def test_place_occupied_raises(self):
        env = Environment(8, 8)
        env.place(2, 3, int(Group.TOP), 1)
        with pytest.raises(ValueError, match="occupied"):
            env.place(2, 3, int(Group.BOTTOM), 2)

    def test_place_out_of_bounds_raises(self):
        env = Environment(8, 8)
        with pytest.raises(ValueError, match="bounds"):
            env.place(8, 0, int(Group.TOP), 1)

    def test_place_bad_index_raises(self):
        env = Environment(8, 8)
        with pytest.raises(ValueError, match="agent_index"):
            env.place(0, 0, int(Group.TOP), 0)


class TestMove:
    def test_move_exchanges_contents(self):
        env = Environment(8, 8)
        env.place(1, 1, int(Group.BOTTOM), 5)
        env.move(1, 1, 0, 1)
        assert env.is_empty(1, 1)
        assert env.mat[0, 1] == int(Group.BOTTOM)
        assert env.index[0, 1] == 5

    def test_move_from_empty_raises(self):
        env = Environment(8, 8)
        with pytest.raises(ValueError, match="empty"):
            env.move(0, 0, 1, 1)

    def test_move_to_occupied_raises(self):
        env = Environment(8, 8)
        env.place(0, 0, 1, 1)
        env.place(1, 1, 2, 2)
        with pytest.raises(ValueError, match="occupied"):
            env.move(0, 0, 1, 1)


class TestInvariants:
    def test_validate_accepts_consistent(self):
        env = Environment(6, 6)
        env.place(0, 0, 1, 1)
        env.place(5, 5, 2, 2)
        env.validate()

    def test_validate_rejects_index_on_empty(self):
        env = Environment(6, 6)
        env.index[3, 3] = 7
        with pytest.raises(AssertionError):
            env.validate()

    def test_validate_rejects_duplicate_indices(self):
        env = Environment(6, 6)
        env.place(0, 0, 1, 4)
        env.mat[1, 1] = 1
        env.index[1, 1] = 4
        with pytest.raises(AssertionError):
            env.validate()

    def test_copy_is_deep(self):
        env = Environment(6, 6)
        env.place(0, 0, 1, 1)
        dup = env.copy()
        dup.mat[0, 0] = 0
        assert env.mat[0, 0] == 1

    def test_equals(self):
        a = Environment(6, 6)
        b = Environment(6, 6)
        assert a.equals(b)
        a.place(0, 0, 1, 1)
        assert not a.equals(b)


class TestLanes:
    def test_cell_lane_row_major(self):
        env = Environment(5, 7)
        assert int(env.cell_lane(0, 0)) == 0
        assert int(env.cell_lane(1, 0)) == 7
        assert int(env.cell_lane(4, 6)) == 34

    def test_cell_lane_vectorized(self):
        env = Environment(5, 7)
        lanes = env.cell_lane(np.array([0, 1]), np.array([3, 4]))
        assert np.array_equal(lanes, [3, 11])

    def test_occupied_cells_row_major(self):
        env = Environment(4, 4)
        env.place(2, 1, 1, 1)
        env.place(0, 3, 2, 2)
        cells = env.occupied_cells()
        assert np.array_equal(cells, [[0, 3], [2, 1]])
