"""One ExecutorPool shared between the service and an in-process sweep.

`SimulationService(executor=pool)` borrows a caller-owned pool instead
of owning one: the same warm workers serve HTTP jobs and a concurrent
`SweepRunner`, and closing the service (or shutting down its server)
must leave the borrowed pool running for the sweep.
"""

import pytest

from repro.errors import ServiceError
from repro.exec import ExecutorPool, LaunchWork, execute_launch
from repro.experiments.sweep import SweepRunner, sweep_grid
from repro.service import ServiceServer, SimulationService
from repro.service.client import submit_jobs, wait_for_jobs


@pytest.fixture()
def pool():
    p = ExecutorPool(2)
    yield p
    p.close()


def test_executor_and_workers_are_mutually_exclusive(tmp_path, pool):
    with pytest.raises(ServiceError, match="not both"):
        SimulationService(str(tmp_path / "s"), workers=2, executor=pool)


def test_service_and_sweep_share_one_pool(tmp_path, tiny_config, pool):
    service = SimulationService(str(tmp_path / "state"), executor=pool)
    server = ServiceServer(service, port=0, tick_interval=0.02)
    server.start()

    # Kick both subsystems onto the same pool: an HTTP burst of jobs
    # that cannot fuse with each other, and an in-process sweep grid.
    specs = [
        {"config": tiny_config.replace(seed=s).to_dict(), "engine": "vectorized"}
        for s in range(3)
    ] + [
        {
            "config": tiny_config.replace(n_per_side=20, seed=9).to_dict(),
            "engine": "vectorized",
        }
    ]
    jobs = submit_jobs(specs, host=server.host, port=server.port)

    runner = SweepRunner(max_lanes=2, executor=pool)
    points = sweep_grid(
        scenario_indices=(1, 2), seeds=(0, 1), models=("lem",), scale="tiny"
    )
    report = runner.run_report(points)

    finished = wait_for_jobs(
        [j["job_id"] for j in jobs],
        host=server.host,
        port=server.port,
        timeout=120,
    )

    # Both customers completed everything on the shared workers.
    assert report.n_points == len(points)
    assert all(r.throughput >= 0 for r in report.records)
    assert {j["state"] for j in finished.values()} == {"done"}
    assert pool.peak_busy >= 1

    # Shutting the service down detaches but does NOT close the
    # borrowed pool: the sweep (and raw launches) keep working.
    server.shutdown()
    future = pool.submit(execute_launch, LaunchWork(configs=(tiny_config,)))
    assert future.result().results[0].steps_run == tiny_config.steps
    report2 = SweepRunner(max_lanes=2, executor=pool).run_report(points[:2])
    assert report2.n_points == 2


def test_owned_pool_still_closed_by_service(tmp_path):
    # The workers>1 path must keep its original lifecycle: the service
    # owns that pool and close() releases it.
    service = SimulationService(str(tmp_path / "owned"), workers=2)
    owned = service._pool
    assert owned is not None and service._owns_pool
    service.close()
    assert service._pool is None
