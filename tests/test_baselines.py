"""Ant System / TSP baseline tests (paper Section II validation)."""

import numpy as np
import pytest

from repro.baselines import (
    AntSystem,
    AntSystemParams,
    circle_instance,
    grid_instance,
    is_valid_tour,
    nearest_neighbor_tour,
    random_instance,
    tour_length,
)
from repro.errors import ConfigurationError


class TestInstances:
    def test_circle_optimum_formula(self):
        inst = circle_instance(6, radius=2.0)
        assert inst.optimum == pytest.approx(2 * 6 * 2.0 * np.sin(np.pi / 6))

    def test_circle_distance_matrix_symmetric(self):
        inst = circle_instance(8)
        d = inst.distance_matrix()
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_grid_even_optimum(self):
        inst = grid_instance(4, 4)
        assert inst.optimum == 16.0

    def test_grid_odd_no_optimum(self):
        assert grid_instance(3, 3).optimum is None

    def test_random_instance_reproducible(self):
        a = random_instance(10, seed=5)
        b = random_instance(10, seed=5)
        assert np.array_equal(a.coords, b.coords)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            circle_instance(2)
        with pytest.raises(ValueError):
            grid_instance(1, 5)


class TestTourUtilities:
    def test_tour_length_closed(self):
        inst = circle_instance(4, radius=1.0)
        d = inst.distance_matrix()
        assert tour_length(d, [0, 1, 2, 3]) == pytest.approx(inst.optimum)

    def test_is_valid_tour(self):
        assert is_valid_tour([2, 0, 1], 3)
        assert not is_valid_tour([0, 0, 1], 3)
        assert not is_valid_tour([0, 1], 3)

    def test_nearest_neighbor_valid(self):
        inst = random_instance(12, seed=2)
        tour = nearest_neighbor_tour(inst.distance_matrix())
        assert is_valid_tour(tour, 12)


class TestAntSystem:
    def test_finds_circle_optimum(self):
        inst = circle_instance(10)
        result = AntSystem(inst, seed=1).run(40)
        assert result.gap_to(inst.optimum) < 0.01

    def test_finds_grid_optimum_or_close(self):
        inst = grid_instance(4, 4)
        result = AntSystem(inst, seed=2).run(60)
        assert result.gap_to(inst.optimum) < 0.10

    def test_beats_or_matches_nearest_neighbor(self):
        inst = random_instance(15, seed=3)
        d = inst.distance_matrix()
        nn = tour_length(d, nearest_neighbor_tour(d))
        result = AntSystem(inst, seed=3).run(60)
        assert result.best_length <= nn * 1.02

    def test_history_monotone_nonincreasing(self):
        inst = random_instance(12, seed=4)
        result = AntSystem(inst, seed=4).run(25)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))
        assert result.iterations == 25

    def test_valid_tour_returned(self):
        inst = random_instance(9, seed=5)
        result = AntSystem(inst, seed=5).run(10)
        assert is_valid_tour(result.best_tour, 9)

    def test_reproducible(self):
        inst = random_instance(10, seed=6)
        a = AntSystem(inst, seed=9).run(15)
        b = AntSystem(inst, seed=9).run(15)
        assert a.best_length == b.best_length
        assert a.best_tour == b.best_tour

    def test_pheromone_concentrates_on_good_edges(self):
        """After convergence on a circle, adjacent-city edges carry more
        pheromone than chords."""
        inst = circle_instance(8)
        solver = AntSystem(inst, seed=7)
        solver.run(50)
        tau = solver.tau
        ring = np.mean([tau[i, (i + 1) % 8] for i in range(8)])
        chords = np.mean([tau[i, (i + 4) % 8] for i in range(8)])
        assert ring > 2 * chords

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            AntSystemParams(rho=0.0).validate()
        with pytest.raises(ConfigurationError):
            AntSystem(circle_instance(5), AntSystemParams(n_ants=0))

    def test_iteration_validation(self):
        with pytest.raises(ConfigurationError):
            AntSystem(circle_instance(5)).run(0)
