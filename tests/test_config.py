"""SimulationConfig tests: validation, derived geometry, scaling."""

import pytest

from repro import ConfigurationError, SimulationConfig, paper_config
from repro.models import ACOParams, LEMParams


class TestValidation:
    def test_defaults_are_paper_values(self):
        cfg = SimulationConfig()
        assert (cfg.height, cfg.width, cfg.steps) == (480, 480, 25000)
        assert cfg.model_name == "lem"

    def test_grid_too_small(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(height=2, width=10)

    def test_bad_population(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_per_side=0)

    def test_bad_fill(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(fill_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(fill_fraction=1.5)

    def test_band_must_fit(self):
        # 30 per side on a 10x10 grid with fill 0.8 -> band of 4 rows; but
        # 60 agents exceed half the grid capacity when fill is tiny.
        with pytest.raises(ConfigurationError):
            SimulationConfig(height=10, width=10, n_per_side=30, fill_fraction=0.1)

    def test_explicit_band_capacity(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(height=20, width=10, n_per_side=25, init_rows=2)

    def test_params_type_checked(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(params="lem")

    def test_negative_steps(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(steps=-1)


class TestDerived:
    def test_band_rows_formula(self):
        cfg = SimulationConfig(height=100, width=100, n_per_side=400, fill_fraction=0.8)
        assert cfg.band_rows == 5  # ceil(400 / 80)

    def test_band_rows_override(self):
        cfg = SimulationConfig(height=100, width=100, n_per_side=400, init_rows=10)
        assert cfg.band_rows == 10

    def test_cross_band_defaults_to_band(self):
        cfg = SimulationConfig(height=100, width=100, n_per_side=400)
        assert cfg.cross_rows == cfg.band_rows

    def test_cross_band_override(self):
        cfg = SimulationConfig(height=100, width=100, n_per_side=400, cross_band=2)
        assert cfg.cross_rows == 2

    def test_density(self):
        cfg = SimulationConfig(height=100, width=100, n_per_side=500)
        assert cfg.density == pytest.approx(0.1)

    def test_describe_mentions_model(self):
        assert "ACO" in SimulationConfig(n_per_side=100).with_model("aco").describe()


class TestBuilders:
    def test_with_model_by_name(self):
        cfg = SimulationConfig().with_model("aco")
        assert isinstance(cfg.params, ACOParams)

    def test_with_model_by_params(self):
        cfg = SimulationConfig().with_model(LEMParams(sigma=0.5))
        assert cfg.params.sigma == 0.5

    def test_with_model_unknown(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_model("boids")

    def test_replace_revalidates(self):
        cfg = SimulationConfig()
        with pytest.raises(ConfigurationError):
            cfg.replace(steps=-5)


class TestScaling:
    def test_diffusive_scaling(self):
        cfg = paper_config(2560).scaled(6)
        assert (cfg.height, cfg.width) == (80, 80)
        assert cfg.n_per_side == 1280 // 36
        assert cfg.steps == round(25000 * (80 / 480) ** 2)  # 694

    def test_ballistic_scaling(self):
        cfg = paper_config(2560).scaled(6, time_scaling="ballistic")
        assert cfg.steps == round(25000 * 80 / 480)

    def test_steps_override(self):
        cfg = paper_config(2560).scaled(6, steps_override=123)
        assert cfg.steps == 123

    def test_density_preserved(self):
        base = paper_config(25600)
        scaled = base.scaled(6)
        assert scaled.density == pytest.approx(base.density, rel=0.05)

    def test_invalid_scaling(self):
        with pytest.raises(ConfigurationError):
            paper_config(2560).scaled(0)
        with pytest.raises(ConfigurationError):
            paper_config(2560).scaled(6, time_scaling="warp")


class TestPaperConfig:
    def test_splits_evenly(self):
        cfg = paper_config(102400, "aco")
        assert cfg.n_per_side == 51200
        assert cfg.model_name == "aco"

    def test_rejects_odd_total(self):
        with pytest.raises(ConfigurationError):
            paper_config(2561)


class TestWireFormat:
    """to_dict/from_dict: the job-spec round trip the serving layer ships."""

    def _roundtrip(self, cfg):
        import json

        return SimulationConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))

    def test_default_roundtrip(self):
        cfg = SimulationConfig(height=24, width=24, n_per_side=16, steps=50)
        assert self._roundtrip(cfg) == cfg

    def test_roundtrip_preserves_model_params(self):
        cfg = SimulationConfig(
            height=24, width=24, n_per_side=16, steps=50,
            params=ACOParams(alpha=2.0, rho=0.1),
        )
        back = self._roundtrip(cfg)
        assert back == cfg
        assert back.params.model_name == "aco"
        assert back.params.alpha == 2.0

    def test_roundtrip_preserves_obstacles(self):
        from repro import ObstacleSpec

        cfg = SimulationConfig(
            height=32, width=32, n_per_side=16, steps=50,
            obstacles=ObstacleSpec(kind="rects", rects=((10, 4, 12, 9),)),
        )
        back = self._roundtrip(cfg)
        assert back == cfg
        assert back.obstacles.rects == ((10, 4, 12, 9),)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict({"height": 24, "warp_factor": 9})

    def test_from_dict_rejects_unknown_model(self):
        spec = SimulationConfig(height=24, width=24, n_per_side=8,
                                steps=10).to_dict()
        spec["params"] = {"model_name": "boids"}
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict(spec)

    def test_from_dict_rejects_bad_param_fields(self):
        spec = SimulationConfig(height=24, width=24, n_per_side=8,
                                steps=10).to_dict()
        spec["params"] = {"model_name": "lem", "sigma": 1.0, "warp": 1}
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict(spec)

    def test_from_dict_revalidates(self):
        spec = SimulationConfig(height=24, width=24, n_per_side=8,
                                steps=10).to_dict()
        spec["n_per_side"] = -3
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict(spec)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig.from_dict([1, 2, 3])
