"""LEM decision kernel tests (eq. 1 semantics)."""

import numpy as np
import pytest

from repro.models import LEMModel, LEMParams, lem_scores
from repro.rng import PhiloxKeyedRNG


def make_scan(dists):
    """One agent's scan row from a dict slot->distance (1-based slots)."""
    row = np.zeros((1, 8))
    for slot, d in dists.items():
        row[0, slot - 1] = d
    return row


class TestScores:
    def test_best_cell_scores_one(self):
        scan = make_scan({1: 2.0, 4: 3.0, 6: 4.0})
        scores = lem_scores(scan, scan > 0)
        assert scores[0, 0] == 1.0

    def test_scores_are_dmin_over_d(self):
        scan = make_scan({1: 2.0, 4: 4.0})
        scores = lem_scores(scan, scan > 0)
        assert scores[0, 3] == 0.5

    def test_non_candidates_zero(self):
        scan = make_scan({2: 5.0})
        scores = lem_scores(scan, scan > 0)
        assert scores[0, 0] == 0.0
        assert np.count_nonzero(scores) == 1

    def test_empty_row_all_zero(self):
        scan = np.zeros((1, 8))
        scores = lem_scores(scan, scan > 0)
        assert np.all(scores == 0.0)

    def test_batch_rows_independent(self):
        scan = np.vstack([make_scan({1: 2.0}), make_scan({6: 8.0})])
        scores = lem_scores(scan, scan > 0)
        assert scores[0, 0] == 1.0 and scores[1, 5] == 1.0


class TestSelectFloor:
    """Default rule: largest C <= x, stay when all scores exceed the draw."""

    def test_no_candidates_returns_minus_one(self, rng):
        model = LEMModel(LEMParams())
        slot = model.select(np.zeros((1, 8)), rng, 0, np.array([1]))
        assert slot[0] == -1

    def test_stay_frequency_matches_normal_mass(self):
        """With one candidate at C=1 and x ~ clipped N(0,1), the agent moves
        only when x clips to 1 — probability P(z >= 1) ~ 0.1587."""
        model = LEMModel(LEMParams())
        rng = PhiloxKeyedRNG(0)
        scan = np.tile(make_scan({1: 5.0}), (200000, 1))
        lanes = np.arange(1, 200001)
        slots = model.select(scan, rng, 0, lanes)
        move_rate = np.mean(slots == 0)
        assert move_rate == pytest.approx(0.1587, abs=0.01)

    def test_high_mu_always_moves_to_best(self):
        model = LEMModel(LEMParams(mu=10.0, sigma=0.01))
        rng = PhiloxKeyedRNG(0)
        scan = np.tile(make_scan({1: 2.0, 6: 9.0}), (1000, 1))
        slots = model.select(scan, rng, 0, np.arange(1, 1001))
        assert np.all(slots == 0)

    def test_low_draws_stay(self):
        model = LEMModel(LEMParams(mu=-10.0, sigma=0.01))
        rng = PhiloxKeyedRNG(0)
        scan = np.tile(make_scan({1: 2.0, 6: 9.0}), (100, 1))
        slots = model.select(scan, rng, 0, np.arange(1, 101))
        assert np.all(slots == -1)

    def test_tie_break_unbiased(self):
        """Equal-distance diagonals must split roughly 50/50."""
        model = LEMModel(LEMParams(mu=10.0, sigma=0.01))
        rng = PhiloxKeyedRNG(3)
        scan = np.tile(make_scan({2: 3.0, 3: 3.0}), (20000, 1))
        slots = model.select(scan, rng, 0, np.arange(1, 20001))
        assert set(np.unique(slots)) == {1, 2}
        assert abs(np.mean(slots == 1) - 0.5) < 0.02


class TestSelectCeil:
    """Ablation rule: smallest C >= x, always moves."""

    def test_always_moves_with_candidates(self):
        model = LEMModel(LEMParams(rule="ceil"))
        rng = PhiloxKeyedRNG(0)
        scan = np.tile(make_scan({4: 5.0, 6: 9.0}), (5000, 1))
        slots = model.select(scan, rng, 0, np.arange(1, 5001))
        assert np.all(slots >= 0)

    def test_prefers_best_with_high_mu(self):
        model = LEMModel(LEMParams(mu=1.0, sigma=0.2, rule="ceil"))
        rng = PhiloxKeyedRNG(0)
        scan = np.tile(make_scan({1: 2.0, 6: 20.0}), (5000, 1))
        slots = model.select(scan, rng, 0, np.arange(1, 5001))
        assert np.mean(slots == 0) > 0.5


class TestScalarEquivalence:
    @pytest.mark.parametrize("rule", ["floor", "ceil"])
    def test_scalar_matches_vectorized(self, rule):
        model = LEMModel(LEMParams(rule=rule))
        rng = PhiloxKeyedRNG(17)
        cases = [
            {},
            {1: 2.0},
            {1: 2.0, 2: 2.2360679774997896, 3: 2.2360679774997896},
            {4: 5.0990195135927845, 5: 5.0990195135927845, 6: 6.0},
            {1: 1e-6},
            {k: float(k) for k in range(1, 9)},
        ]
        scan = np.vstack([make_scan(c) for c in cases])
        lanes = np.arange(1, len(cases) + 1)
        for step in range(5):
            vec = model.select(scan, rng, step, lanes)
            variates = model.scalar_prepare(rng, step, len(cases))
            for i in range(len(cases)):
                scalar = model.select_scalar(list(scan[i]), i + 1, variates)
                assert scalar == vec[i], (rule, step, i)

    def test_scan_value_scalar_is_distance(self):
        model = LEMModel(LEMParams())
        assert model.scan_value_scalar(3.25, 0.0) == 3.25
