"""Sweep runner: grid expansion, batch planning, execution equivalence,
process-pool path, and the report/CLI surface."""

import os

import pytest

from repro.cli import main
from repro.engine import run_simulation
from repro.errors import ExperimentError
from repro.experiments import (
    SweepPoint,
    SweepRunner,
    smoke_sweep_points,
    sweep_grid,
)
from repro.io import read_json_record, read_text_table


class TestGridExpansion:
    def test_full_factorial_order(self):
        points = sweep_grid(
            (1, 2), (0, 1), models=("lem", "aco"), engines=("vectorized",), scale="tiny"
        )
        assert len(points) == 8
        # Scenario-major, then model, then seed.
        assert points[0] == SweepPoint(1, "lem", "vectorized", 0, "tiny")
        assert points[1] == SweepPoint(1, "lem", "vectorized", 1, "tiny")
        assert points[2] == SweepPoint(1, "aco", "vectorized", 0, "tiny")
        assert points[-1] == SweepPoint(2, "aco", "vectorized", 1, "tiny")

    def test_point_config_applies_steps_override(self):
        p = SweepPoint(1, scale="tiny", steps=7)
        assert p.config().steps == 7
        assert SweepPoint(1, scale="tiny").config().steps > 7

    def test_smoke_grid_is_tiny(self):
        points = smoke_sweep_points()
        assert len(points) == 8
        assert all(p.scale == "tiny" for p in points)


class TestPlanning:
    def test_same_key_seeds_batch_together(self):
        runner = SweepRunner(max_lanes=8)
        points = sweep_grid((1,), (0, 1, 2), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert len(units) == 1
        assert units[0].batched and units[0].seeds == (0, 1, 2)

    def test_lane_cap_chunks_seeds(self):
        runner = SweepRunner(max_lanes=2)
        units = runner.plan(sweep_grid((1,), (0, 1, 2, 3, 4), scale="tiny"))
        assert [u.seeds for u in units] == [(0, 1), (2, 3), (4,)]
        assert [u.batched for u in units] == [True, True, False]

    def test_max_lanes_one_disables_batching(self):
        runner = SweepRunner(max_lanes=1)
        units = runner.plan(sweep_grid((1,), (0, 1, 2), scale="tiny"))
        assert all(not u.batched and len(u.seeds) == 1 for u in units)

    def test_sequential_engine_never_batches(self):
        runner = SweepRunner(max_lanes=8)
        units = runner.plan(
            sweep_grid((1,), (0, 1), engines=("sequential",), scale="tiny")
        )
        assert all(not u.batched for u in units)

    def test_duplicate_seeds_fall_back_to_solo(self):
        runner = SweepRunner(max_lanes=8)
        points = [SweepPoint(1, scale="tiny", seed=0), SweepPoint(1, scale="tiny", seed=0)]
        units = runner.plan(points)
        assert all(not u.batched for u in units)

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            SweepRunner(max_lanes=0)
        with pytest.raises(ExperimentError):
            SweepRunner(processes=0)


class TestExecution:
    def test_records_match_solo_runs(self):
        points = sweep_grid((1, 2), (0, 1), models=("lem", "aco"), scale="tiny")
        records = SweepRunner(max_lanes=4).run(points)
        assert len(records) == len(points)
        for point, record in zip(points, records):
            assert (record.scenario_index, record.model, record.seed) == (
                point.scenario_index,
                point.model,
                point.seed,
            )
            solo = run_simulation(
                point.config(), engine=point.engine, record_timeline=False
            )
            assert record.throughput == solo.result.throughput_total
            assert record.steps == solo.result.steps_run

    def test_batched_and_solo_paths_agree(self):
        points = sweep_grid((2,), (0, 1, 2), models=("aco",), scale="tiny")
        batched = SweepRunner(max_lanes=4).run(points)
        solo = SweepRunner(max_lanes=1).run(points)
        assert [r.throughput for r in batched] == [r.throughput for r in solo]

    def test_process_pool_path(self):
        points = sweep_grid((1, 2), (0, 1), models=("lem", "aco"), scale="tiny")
        pooled = SweepRunner(max_lanes=2, processes=2).run(points)
        inline = SweepRunner(max_lanes=2, processes=1).run(points)
        assert [r.throughput for r in pooled] == [r.throughput for r in inline]

    def test_run_report_metadata(self):
        report = SweepRunner(max_lanes=2).run_report(smoke_sweep_points())
        assert report.n_points == 8
        assert report.max_lanes == 2
        assert report.wall_seconds > 0
        assert report.total_throughput > 0


class TestSweepCLI:
    def test_smoke_flag(self, capsys):
        assert main(["sweep", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "8 runs" in out
        assert "lem/vectorized" in out and "aco/vectorized" in out

    def test_writes_records(self, tmp_path, capsys):
        outdir = str(tmp_path / "sweep")
        code = main(
            [
                "sweep",
                "--scenarios",
                "1-2",
                "--seeds",
                "2",
                "--models",
                "lem",
                "--scale",
                "tiny",
                "--lanes",
                "2",
                "--out",
                outdir,
            ]
        )
        assert code == 0
        blob = read_json_record(os.path.join(outdir, "sweep.json"))
        assert blob["n_points"] == 4
        assert len(blob["records"]) == 4
        table = read_text_table(os.path.join(outdir, "sweep.txt"))
        assert table["throughput"].shape == (4,)

    def test_scenario_range_parsing(self):
        from repro.cli import _parse_scenarios

        assert _parse_scenarios("1,3,5-7") == [1, 3, 5, 6, 7]
        with pytest.raises(SystemExit):
            _parse_scenarios(",")
        with pytest.raises(SystemExit):
            _parse_scenarios("foo")

    def test_clean_errors_exit_2(self, capsys):
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--models", "boids"]) == 2
        assert "unknown model" in capsys.readouterr().out
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--lanes", "0"]) == 2
        assert "max_lanes" in capsys.readouterr().out

    def test_empty_grid_axes_exit_2(self, capsys):
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--seeds", "0"]) == 2
        assert "--seeds selects no runs" in capsys.readouterr().out
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--models", ","]) == 2
        assert "--models selects no runs" in capsys.readouterr().out
