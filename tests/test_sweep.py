"""Sweep runner: grid expansion, batch planning (same-shape and padded
heterogeneous), execution equivalence, duplicate handling, process-pool
path, and the report/CLI surface."""

import multiprocessing
import os
import typing

import pytest

from repro.cli import main
from repro.config import SimulationConfig
from repro.engine import run_simulation
from repro.engine.batched import BatchedTimedResult
from repro.errors import ExperimentError
from repro.experiments import (
    AGENT_INCREMENT,
    SweepPoint,
    SweepRunner,
    scenario_config,
    scenario_spec,
    smoke_sweep_points,
    sweep_grid,
)
from repro.io import read_json_record, read_text_table


class TestGridExpansion:
    def test_full_factorial_order(self):
        points = sweep_grid(
            (1, 2), (0, 1), models=("lem", "aco"), engines=("vectorized",), scale="tiny"
        )
        assert len(points) == 8
        # Scenario-major, then model, then seed.
        assert points[0] == SweepPoint(1, "lem", "vectorized", 0, "tiny")
        assert points[1] == SweepPoint(1, "lem", "vectorized", 1, "tiny")
        assert points[2] == SweepPoint(1, "aco", "vectorized", 0, "tiny")
        assert points[-1] == SweepPoint(2, "aco", "vectorized", 1, "tiny")

    def test_point_config_applies_steps_override(self):
        p = SweepPoint(1, scale="tiny", steps=7)
        assert p.config().steps == 7
        assert SweepPoint(1, scale="tiny").config().steps > 7

    def test_smoke_grid_is_tiny(self):
        points = smoke_sweep_points()
        assert len(points) == 8
        assert all(p.scale == "tiny" for p in points)


class TestPlanning:
    def test_same_key_seeds_batch_together(self):
        runner = SweepRunner(max_lanes=8)
        points = sweep_grid((1,), (0, 1, 2), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert len(units) == 1
        assert units[0].batched and units[0].seeds == (0, 1, 2)

    def test_lane_cap_chunks_seeds(self):
        runner = SweepRunner(max_lanes=2)
        units = runner.plan(sweep_grid((1,), (0, 1, 2, 3, 4), scale="tiny"))
        assert [u.seeds for u in units] == [(0, 1), (2, 3), (4,)]
        assert [u.batched for u in units] == [True, True, False]

    def test_max_lanes_one_disables_batching(self):
        runner = SweepRunner(max_lanes=1)
        units = runner.plan(sweep_grid((1,), (0, 1, 2), scale="tiny"))
        assert all(not u.batched and len(u.seeds) == 1 for u in units)

    def test_sequential_engine_never_batches(self):
        runner = SweepRunner(max_lanes=8)
        units = runner.plan(
            sweep_grid((1,), (0, 1), engines=("sequential",), scale="tiny")
        )
        assert all(not u.batched for u in units)

    def test_duplicate_seeds_fall_back_to_solo(self):
        runner = SweepRunner(max_lanes=8)
        points = [SweepPoint(1, scale="tiny", seed=0), SweepPoint(1, scale="tiny", seed=0)]
        units = runner.plan(points)
        assert all(not u.batched for u in units)

    def test_duplicate_seed_only_degrades_the_duplicates(self):
        """Distinct seeds still batch; only the repeats run solo."""
        runner = SweepRunner(max_lanes=8)
        seeds = (0, 1, 0, 2, 1)
        points = [SweepPoint(1, scale="tiny", seed=s) for s in seeds]
        units = runner.plan(points)
        assert [(u.seeds, u.batched) for u in units] == [
            ((0, 1, 2), True),
            ((0,), False),
            ((1,), False),
        ]
        # Every requested position is covered exactly once.
        covered = sorted(i for u in units for i in u.indices)
        assert covered == list(range(len(points)))

    def test_plan_units_carry_request_indices(self):
        runner = SweepRunner(max_lanes=2)
        points = sweep_grid((1, 2), (0, 1), scale="tiny")
        units = runner.plan(points)
        covered = sorted(i for u in units for i in u.indices)
        assert covered == list(range(len(points)))
        for unit in units:
            for idx, seed in zip(unit.indices, unit.seeds):
                assert points[idx].seed == seed

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            SweepRunner(max_lanes=0)
        with pytest.raises(ExperimentError):
            SweepRunner(processes=0)
        with pytest.raises(ExperimentError):
            SweepRunner(max_pad_waste=1.0)
        with pytest.raises(ExperimentError):
            SweepRunner(max_pad_waste=-0.1)


class TestScenarioTableCoupling:
    """SweepPoint.config() follows the paper's scenario table."""

    def test_config_population_matches_scenario_spec(self):
        for k in (1, 2, 7):
            point = SweepPoint(k, scale="tiny")
            expected = scenario_config(scenario_spec(k), scale="tiny")
            assert point.config().total_agents == expected.total_agents
            assert point.config() == expected

    def test_agent_increment_drives_the_table(self):
        assert scenario_spec(3).total_agents == 3 * AGENT_INCREMENT

    def test_rejects_scenario_index_below_one(self):
        with pytest.raises(ExperimentError):
            SweepPoint(0, scale="tiny")
        with pytest.raises(ExperimentError):
            scenario_spec(-2)

    def test_cli_exits_2_on_bad_scenario(self, capsys):
        assert main(["sweep", "--scenarios", "0-2", "--scale", "tiny",
                     "--models", "lem", "--seeds", "1"]) == 2
        assert "scenario_index must be >= 1" in capsys.readouterr().out


class TestPaddedPacking:
    """pad_lanes fuses mixed-scenario points under the waste bound."""

    def test_mixed_scenarios_fuse_into_padded_units(self):
        runner = SweepRunner(max_lanes=8, pad_lanes=True)
        points = sweep_grid((2, 3, 4), (0,), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert len(units) == 1
        unit = units[0]
        assert unit.batched and unit.points is not None
        # Packed largest-population-first.
        assert [p.scenario_index for p in unit.points] == [4, 3, 2]
        assert sorted(unit.indices) == [0, 1, 2]

    def test_waste_bound_splits_batches(self):
        # Scenario 1 (6 agents at tiny scale) against 4x larger lanes
        # pushes the padded fraction past the bound and is left out.
        runner = SweepRunner(max_lanes=8, pad_lanes=True, max_pad_waste=0.3)
        points = sweep_grid((1, 2, 3, 4), (0,), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert [tuple(p.scenario_index for p in (u.points or (u.point,)))
                for u in units] == [(4, 3, 2), (1,)]
        assert not units[1].batched
        # A zero waste bound only fuses identically-sized lanes.
        strict = SweepRunner(max_lanes=8, pad_lanes=True, max_pad_waste=0.0)
        assert all(
            u.points is None for u in strict.plan(points)
        )

    def test_same_key_chunks_still_batch_under_pad_mode(self):
        runner = SweepRunner(max_lanes=8, pad_lanes=True)
        points = sweep_grid((1,), (0, 1, 2), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert len(units) == 1
        assert units[0].batched and units[0].points is None

    def test_padded_records_match_solo_runs(self):
        points = sweep_grid((1, 2, 3, 4), (0, 1), models=("lem", "aco"),
                            scale="tiny")
        padded = SweepRunner(max_lanes=8, pad_lanes=True).run(points)
        solo = SweepRunner(max_lanes=1).run(points)
        assert [r.throughput for r in padded] == [r.throughput for r in solo]
        assert [r.total_agents for r in padded] == [r.total_agents for r in solo]
        for point, record in zip(points, padded):
            assert (record.scenario_index, record.model, record.seed) == (
                point.scenario_index,
                point.model,
                point.seed,
            )

    def test_padded_cli_flag(self, capsys):
        assert main(["sweep", "--scenarios", "1-3", "--seeds", "1",
                     "--models", "lem", "--scale", "tiny", "--pad-lanes"]) == 0
        assert "padded lanes" in capsys.readouterr().out


class TestDuplicatePointRecords:
    """Identical requested points each keep their own record."""

    def test_duplicated_points_all_return_records(self):
        point = SweepPoint(1, scale="tiny", seed=0)
        records = SweepRunner(max_lanes=8).run([point, point, point])
        assert len(records) == 3
        assert all(r.seed == 0 and r.scenario_index == 1 for r in records)
        assert all(r.wall_seconds > 0 for r in records)

    def test_mixed_duplicates_preserve_request_order(self):
        points = [
            SweepPoint(1, scale="tiny", seed=0),
            SweepPoint(1, scale="tiny", seed=1),
            SweepPoint(1, scale="tiny", seed=0),
            SweepPoint(2, scale="tiny", seed=0),
        ]
        records = SweepRunner(max_lanes=8).run(points)
        assert [(r.scenario_index, r.seed) for r in records] == [
            (1, 0), (1, 1), (1, 0), (2, 0),
        ]


class TestPlatformCompat:
    """Explicit multiprocessing context + result-type annotations."""

    def test_pool_start_method_is_explicit_and_not_fork(self):
        from repro.experiments.sweep import _MP_START_METHOD

        assert _MP_START_METHOD in multiprocessing.get_all_start_methods()
        assert _MP_START_METHOD != "fork"

    def test_batched_result_config_annotation_is_optional(self):
        hints = typing.get_type_hints(BatchedTimedResult)
        assert hints["config"] == typing.Optional[SimulationConfig]
        assert BatchedTimedResult([], 0.0).config is None


class TestExecution:
    def test_records_match_solo_runs(self):
        points = sweep_grid((1, 2), (0, 1), models=("lem", "aco"), scale="tiny")
        records = SweepRunner(max_lanes=4).run(points)
        assert len(records) == len(points)
        for point, record in zip(points, records):
            assert (record.scenario_index, record.model, record.seed) == (
                point.scenario_index,
                point.model,
                point.seed,
            )
            solo = run_simulation(
                point.config(), engine=point.engine, record_timeline=False
            )
            assert record.throughput == solo.result.throughput_total
            assert record.steps == solo.result.steps_run

    def test_batched_and_solo_paths_agree(self):
        points = sweep_grid((2,), (0, 1, 2), models=("aco",), scale="tiny")
        batched = SweepRunner(max_lanes=4).run(points)
        solo = SweepRunner(max_lanes=1).run(points)
        assert [r.throughput for r in batched] == [r.throughput for r in solo]

    def test_process_pool_path(self):
        points = sweep_grid((1, 2), (0, 1), models=("lem", "aco"), scale="tiny")
        pooled = SweepRunner(max_lanes=2, processes=2).run(points)
        inline = SweepRunner(max_lanes=2, processes=1).run(points)
        assert [r.throughput for r in pooled] == [r.throughput for r in inline]

    def test_run_report_metadata(self):
        report = SweepRunner(max_lanes=2).run_report(smoke_sweep_points())
        assert report.n_points == 8
        assert report.max_lanes == 2
        assert report.wall_seconds > 0
        assert report.total_throughput > 0


class TestSweepCLI:
    def test_smoke_flag(self, capsys):
        assert main(["sweep", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "8 runs" in out
        assert "lem/vectorized" in out and "aco/vectorized" in out

    def test_writes_records(self, tmp_path, capsys):
        outdir = str(tmp_path / "sweep")
        code = main(
            [
                "sweep",
                "--scenarios",
                "1-2",
                "--seeds",
                "2",
                "--models",
                "lem",
                "--scale",
                "tiny",
                "--lanes",
                "2",
                "--out",
                outdir,
            ]
        )
        assert code == 0
        blob = read_json_record(os.path.join(outdir, "sweep.json"))
        assert blob["n_points"] == 4
        assert len(blob["records"]) == 4
        table = read_text_table(os.path.join(outdir, "sweep.txt"))
        assert table["throughput"].shape == (4,)

    def test_scenario_range_parsing(self):
        from repro.cli import _parse_scenarios

        assert _parse_scenarios("1,3,5-7") == [1, 3, 5, 6, 7]
        with pytest.raises(SystemExit):
            _parse_scenarios(",")
        with pytest.raises(SystemExit):
            _parse_scenarios("foo")

    def test_clean_errors_exit_2(self, capsys):
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--models", "boids"]) == 2
        assert "unknown model" in capsys.readouterr().out
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--lanes", "0"]) == 2
        assert "max_lanes" in capsys.readouterr().out

    def test_empty_grid_axes_exit_2(self, capsys):
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--seeds", "0"]) == 2
        assert "--seeds selects no runs" in capsys.readouterr().out
        assert main(["sweep", "--scenarios", "1", "--scale", "tiny",
                     "--models", ","]) == 2
        assert "--models selects no runs" in capsys.readouterr().out


class TestDerivedPadWaste:
    """Default max_pad_waste derives from the cost model's dispatch overhead."""

    def test_bound_is_clamped_and_scale_monotone(self):
        from repro.experiments.sweep import (
            MAX_PAD_WASTE_CEILING,
            MIN_PAD_WASTE,
            derived_pad_waste,
        )

        tiny = scenario_config(scenario_spec(1), model="lem", scale="tiny")
        paper = scenario_config(scenario_spec(40), model="lem", scale="standard")
        w_tiny = derived_pad_waste(tiny, 8)
        w_paper = derived_pad_waste(paper, 8)
        assert MIN_PAD_WASTE <= w_paper <= w_tiny <= MAX_PAD_WASTE_CEILING
        # Tiny grids are dispatch-dominated -> loose bound; paper scale is
        # compute-dominated -> tight bound.
        assert w_tiny > w_paper

    def test_default_runner_uses_derived_bound(self):
        # At the tiny scale the derived bound is looser than the old 0.3
        # hard-code, so scenario 1 now fuses into the padded batch instead
        # of falling out solo.
        runner = SweepRunner(max_lanes=8, pad_lanes=True)
        points = sweep_grid((1, 2, 3, 4), (0,), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert len(units) == 1 and units[0].points is not None

    def test_explicit_bound_still_wins(self):
        runner = SweepRunner(max_lanes=8, pad_lanes=True, max_pad_waste=0.0)
        points = sweep_grid((1, 2), (0,), models=("lem",), scale="tiny")
        assert all(u.points is None for u in runner.plan(points))

    def test_cli_pad_waste_override(self, capsys):
        assert main(["sweep", "--scenarios", "1-3", "--seeds", "1",
                     "--models", "lem", "--scale", "tiny", "--pad-lanes",
                     "--pad-waste", "0.0"]) == 0
        capsys.readouterr()

    def test_invalid_explicit_bound_still_rejected(self):
        with pytest.raises(ExperimentError):
            SweepRunner(max_pad_waste=1.0)


class TestPaddingAwarePoolScheduling:
    """Pool dispatch orders units by real agent-steps (LPT), not lane count."""

    def _unit_cost(self, unit):
        from repro.exec import launch_cost
        from repro.experiments.sweep import _unit_lanes, _unit_work

        _, configs = _unit_lanes(unit)
        return launch_cost(_unit_work(unit, configs))

    def test_unit_cost_counts_real_agents_not_lanes(self):
        runner = SweepRunner(max_lanes=8, pad_lanes=True)
        points = sweep_grid((1, 2, 3, 4), (0,), models=("lem",), scale="tiny")
        units = runner.plan(points)
        for unit in units:
            lane_points = unit.points or tuple(
                unit.point for _ in unit.seeds
            )
            expected = sum(
                p.config().total_agents * p.config().steps for p in lane_points
            )
            assert self._unit_cost(unit) == expected

    def test_heaviest_unit_dispatches_first(self):
        # Many seeds of the smallest scenario vs one seed of the largest:
        # lane count would rank the small batch first, real agent count
        # must rank the big scenario first.
        points = sweep_grid((8,), (0,), models=("lem",), scale="tiny")
        points += sweep_grid((1,), (0, 1, 2, 3), models=("lem",), scale="tiny")
        runner = SweepRunner(max_lanes=4)
        units = runner.plan(points)
        costs = [self._unit_cost(u) for u in units]
        lanes = [len(u.seeds) for u in units]
        order = sorted(range(len(units)), key=lambda i: (-costs[i], i))
        assert lanes[order[0]] == 1  # the single-seed big-scenario unit
        assert costs[order[0]] == max(costs)

    def test_pool_path_matches_inline_records(self):
        points = sweep_grid((1, 2, 3, 4), (0, 1), models=("lem",), scale="tiny")
        pooled = SweepRunner(max_lanes=4, processes=2, pad_lanes=True).run(points)
        inline = SweepRunner(max_lanes=4, processes=1, pad_lanes=True).run(points)
        assert [r.throughput for r in pooled] == [r.throughput for r in inline]
        assert [r.seed for r in pooled] == [r.seed for r in inline]


class TestSweepBackendSelection:
    """SweepRunner(backend=...) threads the array backend to every lane."""

    def test_backend_applied_to_unit_configs(self):
        from repro.experiments.sweep import _unit_lanes

        runner = SweepRunner(max_lanes=4, backend="numpy")
        points = sweep_grid((1,), (0, 1), models=("lem",), scale="tiny")
        units = runner.plan(points)
        assert all(u.backend == "numpy" for u in units)
        _, configs = _unit_lanes(units[0])
        assert all(cfg.backend == "numpy" for cfg in configs)

    @pytest.fixture
    def cupy_unavailable(self, monkeypatch):
        """Force the cupy factory down its ImportError path.

        Keeps these tests meaningful even on machines where CuPy *is*
        installed (e.g. with the repro[gpu] extra).
        """
        import repro.backend.core as backend_core
        import repro.backend.cupy_backend as cupy_backend_module

        def boom():
            raise ImportError("No module named 'cupy'")

        monkeypatch.setattr(cupy_backend_module, "_import_cupy", boom)
        cached = backend_core._INSTANCES.pop("cupy", None)
        yield
        if cached is not None:
            backend_core._INSTANCES["cupy"] = cached

    def test_unavailable_backend_fails_fast(self, cupy_unavailable):
        from repro.errors import BackendUnavailableError

        with pytest.raises(BackendUnavailableError):
            SweepRunner(backend="cupy")

    def test_cli_backend_flag_exit_codes(self, capsys, cupy_unavailable):
        assert main(["sweep", "--scenarios", "1", "--seeds", "1",
                     "--models", "lem", "--scale", "tiny",
                     "--backend", "numpy"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--smoke", "--backend", "cupy"]) == 2
        assert "cupy" in capsys.readouterr().out
