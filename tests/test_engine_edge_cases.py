"""Engine edge cases: extreme densities, tiny populations, odd geometry."""

import pytest

from repro import SimulationConfig, build_engine
from repro.errors import LaunchConfigError
from repro.types import Group


class TestTinyPopulations:
    def test_single_agent_per_side(self):
        cfg = SimulationConfig(height=16, width=16, n_per_side=1, steps=40, seed=0)
        for engine in ("sequential", "vectorized", "tiled"):
            eng = build_engine(cfg, engine)
            eng.run(record_timeline=False)
            assert eng.throughput() == 2, engine

    def test_single_agent_aco_deposits(self):
        cfg = SimulationConfig(
            height=16, width=16, n_per_side=1, steps=20, seed=0
        ).with_model("aco")
        eng = build_engine(cfg, "vectorized")
        eng.run(record_timeline=False)
        totals = eng.pher.totals()
        # The lone top agent deposited on its own field only.
        assert totals[Group.TOP] != totals[Group.BOTTOM]


class TestSaturatedBands:
    def test_full_band_placement_runs(self):
        """fill_fraction=1: the starting bands are completely solid."""
        cfg = SimulationConfig(
            height=20, width=10, n_per_side=30, steps=30, seed=1,
            fill_fraction=1.0,
        )
        eng = build_engine(cfg, "vectorized")
        first = eng.step()
        # Only the front row can move initially: moves happen but not many.
        assert 0 < first.moved <= 2 * cfg.width
        eng.validate_state()

    def test_very_high_density_no_crash(self):
        cfg = SimulationConfig(
            height=20, width=20, n_per_side=160, steps=40, seed=2,
        ).with_model("aco")
        eng = build_engine(cfg, "vectorized")
        eng.run(record_timeline=False)
        eng.validate_state()
        assert eng.env.count(Group.TOP) == 160


class TestGeometry:
    def test_rectangular_grid(self):
        cfg = SimulationConfig(height=40, width=12, n_per_side=30, steps=80, seed=3)
        seq = build_engine(cfg, "sequential")
        vec = build_engine(cfg, "vectorized")
        for _ in range(80):
            assert seq.step() == vec.step()
        assert seq.state_equals(vec)

    def test_wide_grid(self):
        cfg = SimulationConfig(height=12, width=64, n_per_side=100, steps=30, seed=4)
        eng = build_engine(cfg, "vectorized")
        eng.run(record_timeline=False)
        eng.validate_state()

    def test_tiled_rejects_non_multiple_grid(self):
        cfg = SimulationConfig(height=20, width=20, n_per_side=10, steps=5)
        with pytest.raises(LaunchConfigError, match="multiple"):
            build_engine(cfg, "tiled")

    def test_minimum_grid(self):
        cfg = SimulationConfig(height=4, width=4, n_per_side=2, steps=10, seed=5)
        eng = build_engine(cfg, "vectorized")
        eng.run(record_timeline=False)
        eng.validate_state()


class TestCrossBandOverride:
    def test_narrow_cross_band_slows_counting(self):
        base = SimulationConfig(height=32, width=32, n_per_side=60, steps=60, seed=6)
        wide = build_engine(base.replace(cross_band=8), "vectorized")
        narrow = build_engine(base.replace(cross_band=1), "vectorized")
        for _ in range(60):
            wide.step()
            narrow.step()
        # Same dynamics (crossing is bookkeeping only) but counting differs.
        assert wide.env.equals(narrow.env)
        assert wide.throughput() >= narrow.throughput()


class TestDeterminismAcrossRuns:
    def test_engine_restart_reproduces(self, small_aco_config):
        a = build_engine(small_aco_config, "vectorized")
        a.run(steps=25, record_timeline=False)
        b = build_engine(small_aco_config, "vectorized")
        b.run(steps=25, record_timeline=False)
        assert a.state_equals(b)

    def test_step_split_equals_continuous(self, small_config):
        """Running 10+15 steps equals running 25 straight."""
        a = build_engine(small_config, "vectorized")
        a.run(steps=10, record_timeline=False)
        a.run(steps=15, record_timeline=False)
        b = build_engine(small_config, "vectorized")
        b.run(steps=25, record_timeline=False)
        assert a.state_equals(b)
