"""Baseline policy tests (random / greedy)."""

import numpy as np
import pytest

from repro.models import GreedyModel, GreedyParams, RandomModel, RandomParams
from repro.rng import PhiloxKeyedRNG


class TestRandomModel:
    def test_uniform_over_candidates(self):
        model = RandomModel(RandomParams())
        rng = PhiloxKeyedRNG(2)
        scan = np.zeros((60000, 8))
        scan[:, [1, 4, 7]] = 1.0
        slots = model.select(scan, rng, 0, np.arange(1, 60001))
        for s in (1, 4, 7):
            assert np.mean(slots == s) == pytest.approx(1 / 3, abs=0.01)

    def test_no_candidates(self, rng):
        model = RandomModel(RandomParams())
        assert model.select(np.zeros((1, 8)), rng, 0, np.array([1]))[0] == -1

    def test_scan_values_are_indicators(self):
        model = RandomModel(RandomParams())
        cand = np.array([[True, False] * 4])
        vals = model.scan_values(np.ones((1, 8)), cand)
        assert np.array_equal(vals, cand.astype(float))

    def test_scalar_matches(self):
        model = RandomModel(RandomParams())
        rng = PhiloxKeyedRNG(4)
        scan = np.zeros((30, 8))
        scan[:, 2] = 1.0
        scan[::2, 5] = 1.0
        vec = model.select(scan, rng, 1, np.arange(1, 31))
        variates = model.scalar_prepare(rng, 1, 30)
        for i in range(30):
            assert model.select_scalar(list(scan[i]), i + 1, variates) == vec[i]


class TestGreedyModel:
    def test_always_picks_nearest(self):
        model = GreedyModel(GreedyParams())
        rng = PhiloxKeyedRNG(2)
        scan = np.zeros((100, 8))
        scan[:, 0] = 5.0
        scan[:, 3] = 2.0  # nearest
        slots = model.select(scan, rng, 0, np.arange(1, 101))
        assert np.all(slots == 3)

    def test_tie_break_unbiased(self):
        model = GreedyModel(GreedyParams())
        rng = PhiloxKeyedRNG(2)
        scan = np.zeros((20000, 8))
        scan[:, 1] = scan[:, 2] = 3.0
        slots = model.select(scan, rng, 0, np.arange(1, 20001))
        assert abs(np.mean(slots == 1) - 0.5) < 0.02

    def test_no_candidates(self, rng):
        model = GreedyModel(GreedyParams())
        assert model.select(np.zeros((1, 8)), rng, 0, np.array([1]))[0] == -1

    def test_scalar_matches(self):
        model = GreedyModel(GreedyParams())
        rng = PhiloxKeyedRNG(6)
        gen = np.random.default_rng(0)
        scan = np.where(gen.random((40, 8)) < 0.6, gen.integers(1, 5, (40, 8)).astype(float), 0.0)
        vec = model.select(scan, rng, 2, np.arange(1, 41))
        variates = model.scalar_prepare(rng, 2, 40)
        for i in range(40):
            assert model.select_scalar(list(scan[i]), i + 1, variates) == vec[i]
