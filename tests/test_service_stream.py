"""Service streaming surface: SSE endpoint, analytics routes, parity."""

import http.client
import json
import os

import pytest

from repro.config import SimulationConfig
from repro.errors import ServiceError
from repro.service import ServiceServer, SimulationService
from repro.service.client import (
    get_analytics_runs,
    get_fundamental_diagram,
    get_job,
    get_stats,
    iter_job_stream,
    submit_jobs,
    wait_for_jobs,
)


@pytest.fixture()
def analytics_server(tmp_path):
    service = SimulationService(
        str(tmp_path / "state"),
        analytics_db=str(tmp_path / "analytics.sqlite"),
    )
    server = ServiceServer(service, port=0, tick_interval=0.02)
    server.start()
    yield server
    server.shutdown()


def _submit(server, configs, engine="vectorized"):
    jobs = submit_jobs(
        [{"config": c.to_dict(), "engine": engine} for c in configs],
        host=server.host,
        port=server.port,
    )
    return [j["job_id"] for j in jobs]


class TestStreamEndpoint:
    def test_stream_ships_every_step_then_done(
        self, analytics_server, tiny_config
    ):
        (job_id,) = _submit(analytics_server, [tiny_config])
        events = list(
            iter_job_stream(
                job_id, host=analytics_server.host, port=analytics_server.port
            )
        )
        kinds = [e for e, _ in events]
        assert kinds.count("metrics") == tiny_config.steps
        assert kinds[-1] == "done"
        steps = [p["step"] for e, p in events if e == "metrics"]
        assert steps == list(range(tiny_config.steps))
        done = events[-1][1]
        assert done == {
            "job_id": job_id,
            "state": "done",
            "steps_streamed": tiny_config.steps,
            "cache_hit": False,
        }

    def test_metrics_observable_before_job_completes(
        self, analytics_server, tiny_config
    ):
        # The acceptance criterion: a long job's metrics must be visible
        # on the stream while the job is still running.
        long_cfg = tiny_config.replace(steps=600)
        (job_id,) = _submit(analytics_server, [long_cfg])
        seen_running = False
        metrics_seen = 0
        for event, payload in iter_job_stream(
            job_id, host=analytics_server.host, port=analytics_server.port
        ):
            if event != "metrics":
                break
            metrics_seen += 1
            if not seen_running:
                state = get_job(
                    job_id,
                    host=analytics_server.host,
                    port=analytics_server.port,
                )["state"]
                seen_running = state == "running"
        assert metrics_seen == long_cfg.steps
        assert seen_running, "no metrics event arrived while the job ran"

    def test_sse_wire_framing(self, analytics_server, tiny_config):
        # Below the client helper: the raw bytes must be real SSE over
        # chunked transfer encoding.
        (job_id,) = _submit(analytics_server, [tiny_config])
        wait_for_jobs(
            [job_id], host=analytics_server.host, port=analytics_server.port
        )
        conn = http.client.HTTPConnection(
            analytics_server.host, analytics_server.port, timeout=30
        )
        conn.request("GET", f"/jobs/{job_id}/stream")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "text/event-stream"
        assert resp.getheader("Transfer-Encoding") == "chunked"
        body = resp.read().decode("utf-8")
        conn.close()
        frames = [f for f in body.split("\n\n") if f.strip()]
        assert len(frames) == tiny_config.steps + 1
        for frame in frames[:-1]:
            event_line, data_line = frame.split("\n")
            assert event_line == "event: metrics"
            payload = json.loads(data_line[len("data: ") :])
            assert payload["run_id"] == job_id
        assert frames[-1].startswith("event: done")

    def test_client_disconnect_mid_stream_leaves_server_healthy(
        self, analytics_server, tiny_config
    ):
        long_cfg = tiny_config.replace(steps=800, seed=21)
        (job_id,) = _submit(analytics_server, [long_cfg])
        stream = iter_job_stream(
            job_id, host=analytics_server.host, port=analytics_server.port
        )
        # Read a handful of frames, then hang up mid-run.
        for _ in range(3):
            next(stream)
        stream.close()
        # The server must shrug it off: the job finishes and every other
        # route keeps answering.
        wait_for_jobs(
            [job_id],
            host=analytics_server.host,
            port=analytics_server.port,
            timeout=60,
        )
        stats = get_stats(
            host=analytics_server.host, port=analytics_server.port
        )
        assert stats["completed"] >= 1
        assert stats["metric_rows"] == long_cfg.steps

    def test_unknown_job_404(self, analytics_server):
        with pytest.raises(ServiceError, match="404"):
            list(
                iter_job_stream(
                    "job-424242",
                    host=analytics_server.host,
                    port=analytics_server.port,
                )
            )

    def test_cached_job_streams_replayed_metrics(
        self, analytics_server, tiny_config
    ):
        # Second submission of the same config is served from the cache
        # without executing. Metric rows are keyed per job id, so the
        # cached job's stream has no rows of its own — it must still
        # terminate promptly with a done frame flagging the cache hit.
        (first,) = _submit(analytics_server, [tiny_config])
        wait_for_jobs(
            [first], host=analytics_server.host, port=analytics_server.port
        )
        (second,) = _submit(analytics_server, [tiny_config])
        events = list(
            iter_job_stream(
                second, host=analytics_server.host, port=analytics_server.port
            )
        )
        assert events[-1][1]["cache_hit"] is True


class TestAnalyticsEndpoints:
    def test_runs_and_diagram_across_two_scenarios(
        self, analytics_server, tiny_config
    ):
        other = SimulationConfig(
            height=24, width=24, n_per_side=20, steps=tiny_config.steps, seed=4
        )
        ids = _submit(
            analytics_server,
            [tiny_config, tiny_config.replace(seed=8), other],
        )
        wait_for_jobs(
            ids, host=analytics_server.host, port=analytics_server.port
        )
        payload = get_analytics_runs(
            host=analytics_server.host, port=analytics_server.port
        )
        assert {r["run_id"] for r in payload["runs"]} == set(ids)
        assert len(payload["scenarios"]) == 2

        # Scenario filter narrows the listing.
        scoped = get_analytics_runs(
            host=analytics_server.host,
            port=analytics_server.port,
            scenario="24x24",
        )
        assert {r["scenario"] for r in scoped["runs"]} == {"24x24"}

        # The acceptance criterion: density/flow points spanning >= 2
        # persisted runs, flow consistent with the job results.
        points = get_fundamental_diagram(
            host=analytics_server.host, port=analytics_server.port
        )
        assert len(points) == 3
        assert {p["scenario"] for p in points} == {"16x16", "24x24"}
        for p in points:
            job = get_job(
                p["run_id"],
                host=analytics_server.host,
                port=analytics_server.port,
            )
            assert p["throughput_total"] == job["result"]["throughput_total"]
            assert p["flow"] == pytest.approx(
                p["throughput_total"] / p["steps"]
            )

    def test_stats_merges_analytics_counts(self, analytics_server, tiny_config):
        ids = _submit(analytics_server, [tiny_config])
        wait_for_jobs(
            ids, host=analytics_server.host, port=analytics_server.port
        )
        stats = get_stats(
            host=analytics_server.host, port=analytics_server.port
        )
        assert stats["analytics_db"].endswith("analytics.sqlite")
        assert stats["runs_done"] == 1
        assert stats["metric_rows"] == tiny_config.steps

    def test_analytics_disabled_409(self, tmp_path, tiny_config):
        service = SimulationService(str(tmp_path / "plain-state"))
        server = ServiceServer(service, port=0, tick_interval=0.02)
        server.start()
        try:
            (job_id,) = _submit(server, [tiny_config])
            for call in (
                lambda: list(
                    iter_job_stream(job_id, host=server.host, port=server.port)
                ),
                lambda: get_analytics_runs(host=server.host, port=server.port),
                lambda: get_fundamental_diagram(
                    host=server.host, port=server.port
                ),
            ):
                with pytest.raises(ServiceError, match="409"):
                    call()
            assert get_stats(host=server.host, port=server.port)[
                "analytics_db"
            ] is None
        finally:
            server.shutdown()


class TestStreamingParity:
    def test_streamed_service_results_match_plain_service(
        self, tmp_path, tiny_config
    ):
        # Final acceptance criterion: results through the streaming path
        # are bit-identical to the non-streaming path.
        configs = [tiny_config, tiny_config.replace(seed=13)]

        def run(state, analytics):
            service = SimulationService(
                os.path.join(str(tmp_path), state),
                analytics_db=(
                    os.path.join(str(tmp_path), state + ".sqlite")
                    if analytics
                    else None
                ),
            )
            try:
                jobs = [service.submit(c) for c in configs]
                service.run_until_idle()
                return [service.job(j.job_id).result for j in jobs]
            finally:
                service.close()

        streamed = run("with-analytics", True)
        plain = run("without-analytics", False)
        assert streamed == plain


class TestNamedScenarioEndToEnd:
    def test_boarding_and_crossing_through_service_sse_analytics(
        self, analytics_server
    ):
        # Full wire tour for the named families: submit → batch → SSE
        # stream → analytics rows keyed by the scenario label.
        from repro.components.scenarios import build_scenario

        host, port = analytics_server.host, analytics_server.port
        configs = [
            build_scenario("boarding:12x5", scale="tiny"),
            build_scenario("crossing:12x12", scale="tiny"),
        ]
        ids = _submit(analytics_server, configs)
        done = wait_for_jobs(ids, host=host, port=port, timeout=60)
        assert all(j["state"] == "done" for j in done.values())
        assert [done[i]["scenario"] for i in ids] == [
            "boarding:12x5",
            "crossing:12x12",
        ]

        # The SSE stream serves the named job like any other.
        events = list(iter_job_stream(ids[1], host=host, port=port))
        kinds = [e for e, _ in events]
        assert kinds.count("metrics") == configs[1].steps
        assert kinds[-1] == "done"

        payload = get_analytics_runs(host=host, port=port)
        assert set(payload["scenarios"]) == {
            "boarding:12x5",
            "crossing:12x12",
        }
        scoped = get_analytics_runs(
            host=host, port=port, scenario="crossing:12x12"
        )
        assert [r["run_id"] for r in scoped["runs"]] == [ids[1]]
        points = get_fundamental_diagram(
            host=host, port=port, scenario="boarding:12x5"
        )
        assert points and all(
            p["scenario"] == "boarding:12x5" for p in points
        )
